"""Execution-cost profiler.

Attributes the number of executed IR instructions to the dynamic loop
stack.  This provides:

* **sequential coverage** per loop — the fraction of total executed
  instructions spent inside the loop (paper Tables II and IV);
* **per-iteration costs** for selected loops — the work distribution the
  simulated multicore executor schedules (paper Figs. 5–7);
* hot-loop ranking used by the profitability selection step.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.interp.events import LoopCtx


class Profiler:
    """Counts executed instructions per loop (inclusive of nested work)."""

    def __init__(self, iteration_detail_for: Optional[Set[str]] = None):
        #: Inclusive instruction count per loop label.
        self.loop_cost: Dict[str, int] = {}
        #: Total instructions executed by the program.
        self.total_cost = 0
        #: (label, invocation) -> list of per-iteration inclusive costs.
        self._iteration_costs: Dict[Tuple[str, int], List[int]] = {}
        self._detail = iteration_detail_for or set()

    # -- interpreter hook -----------------------------------------------------

    def on_block(self, n_instrs: int, loop_stack: Sequence[LoopCtx]) -> None:
        self.total_cost += n_instrs
        for ctx in loop_stack:
            label = ctx.label
            self.loop_cost[label] = self.loop_cost.get(label, 0) + n_instrs
            if label in self._detail:
                key = (label, ctx.invocation)
                costs = self._iteration_costs.get(key)
                if costs is None:
                    costs = []
                    self._iteration_costs[key] = costs
                while len(costs) <= ctx.iteration:
                    costs.append(0)
                costs[ctx.iteration] += n_instrs

    # -- results ---------------------------------------------------------------

    def coverage(self, label: str) -> float:
        """Fraction of program execution spent in the loop (0..1)."""
        if self.total_cost == 0:
            return 0.0
        return self.loop_cost.get(label, 0) / self.total_cost

    def coverage_of(self, labels: Sequence[str]) -> float:
        """Combined coverage of non-nested loops (sums their inclusive cost).

        Callers must pass loops that do not contain one another, otherwise
        shared work would be double-counted.
        """
        if self.total_cost == 0:
            return 0.0
        return sum(self.loop_cost.get(l, 0) for l in labels) / self.total_cost

    def iteration_costs(self, label: str, invocation: int) -> List[int]:
        return list(self._iteration_costs.get((label, invocation), []))

    def invocations(self, label: str) -> List[int]:
        return sorted(
            inv for (lbl, inv) in self._iteration_costs if lbl == label
        )

    def hottest(self, n: int = 10) -> List[Tuple[str, int]]:
        """The ``n`` most expensive loops as (label, cost) pairs."""
        ranked = sorted(self.loop_cost.items(), key=lambda kv: -kv[1])
        return ranked[:n]
