"""Observer interface for execution events.

The interpreter publishes loop-structure events and memory-access events to
registered observers.  Dynamic analyses (dependence profiling, DiscoPoP,
the DCA profiler) are implemented as observers, mirroring how the paper's
tools consume LLVM instrumentation callbacks.

Memory locations are tuples:

* ``("g", name)`` — a global scalar/reference cell;
* ``("f", oid, field)`` — a struct field;
* ``("a", oid, index)`` — an array element.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

Location = Tuple


@dataclass
class LoopCtx:
    """One active loop on the dynamic loop-context stack."""

    label: str
    invocation: int
    iteration: int


class Observer:
    """Base class with no-op handlers; subclass what you need.

    Set the ``wants_*`` class attributes to opt into event streams — the
    interpreter skips publication entirely for streams nobody wants, which
    keeps uninstrumented runs fast.  Observers receive the interpreter via
    :meth:`attach` before execution starts and may read its public dynamic
    state (``loop_stack``, ``call_stack``).
    """

    wants_loops = False
    wants_memory = False
    wants_calls = False

    def attach(self, interp) -> None:
        """Called once before execution; stores the interpreter handle."""
        self.interp = interp

    def on_loop_enter(self, label: str, invocation: int) -> None:
        """Control entered the loop (iteration 0 about to run)."""

    def on_loop_iteration(self, label: str, invocation: int, iteration: int) -> None:
        """A back edge was taken; ``iteration`` just started."""

    def on_loop_exit(self, label: str, invocation: int) -> None:
        """Control left the loop."""

    def on_read(self, loc: Location, instr) -> None:
        """A memory location was read by ``instr``."""

    def on_write(self, loc: Location, instr) -> None:
        """A memory location was written by ``instr``."""

    def on_call(self, func_name: str) -> None:
        """A user function is about to execute."""

    def on_return(self, func_name: str) -> None:
        """A user function finished."""
