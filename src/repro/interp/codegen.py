"""Python-source codegen execution backend.

The closure backend (:mod:`repro.interp.compiler`) removed per-step
dispatch but still pays one Python call per instruction closure and one
list index per register access.  This backend goes one tier lower: every
IR :class:`~repro.ir.function.Function` is lowered to **Python source
text** and handed to CPython's own compiler, so replay executes plain
bytecode:

* registers become function locals (``LOAD_FAST``/``STORE_FAST``; no
  frame list, no slot indirection).  A read of a never-written register
  surfaces as ``UnboundLocalError`` and is mapped back to the
  interpreter's exact ``read of undefined register %r`` fault;
* constants are baked into the source as literals;
* ``BinOp`` lowers to the native operator expression per op/result type
  (``+``/``-``/``*``/comparisons inline; ``/``, ``%``, ``==``/``!=``
  via the shared C-semantics helpers);
* basic blocks dispatch through a ``while True`` / ``elif`` ladder on an
  integer block id, with every single-predecessor block inlined at its
  use site — jump targets extend the straight-line superblock and branch
  targets nest under the branch's ``if``/``else`` arm, so a typical loop
  iteration runs header + body with one dispatch hop (step accounting
  still charged per source block, exactly like the interpreter);
* fault paths keep the interpreter's messages, line numbers and operand
  evaluation order; step accounting charges ``len(block.instrs)`` at
  block entry and checks ``max_steps`` before the body runs.

Compilation is memoized per :class:`Module` object, and the compiled
code object is persisted on disk keyed by the sha256 of
:func:`repro.ir.printer.format_module` — the same module digest the
analysis cache uses — so cold corpus programs skip even the source
generation + ``compile()`` cost.  Artifacts carry a format version,
the running interpreter's bytecode magic and a payload checksum; any
mismatch or corruption silently falls back to a fresh compile (never to
wrong results).

Like the closure backend it supports no observers and no profiler;
:func:`repro.interp.compiler.create_executor` routes those runs (and
obs-enabled runs) to the tree-walking interpreter.  The
:class:`~repro.core.runtime.DcaRuntime` ``fast_intrinsics`` contract is
honored: when the runtime opts in, the five ``rt_*`` intrinsics call the
handler methods directly with the label baked as a constant.
"""

from __future__ import annotations

import hashlib
import importlib.util
import marshal
import os
import re
import tempfile
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

import repro.obs as obs
from repro.cache import resolve_cache_dir
from repro.interp.compiler import (
    _RT_GET,
    _RT_NEXT,
    _RT_PERMUTE,
    _RT_RECORD,
    _RT_VERIFY,
    CompileError,
    _fdiv,
)
from repro.interp.interpreter import (
    _DEFAULT_MAX_STEPS,
    _trunc_div,
    Interpreter,
    RuntimeHooks,
)
from repro.interp.values import (
    Heap,
    MiniCRuntimeError,
    format_value,
    truthy,
)
from repro.ir.function import Module
from repro.ir.instructions import (
    ArrayLen,
    BinOp,
    Branch,
    Call,
    CallBuiltin,
    Const,
    GetField,
    GetIndex,
    Intrinsic,
    Jump,
    LoadGlobal,
    Mov,
    NewArray,
    NewStruct,
    Reg,
    Ret,
    SetField,
    SetIndex,
    StoreGlobal,
    UnOp,
)
from repro.ir.printer import format_module
from repro.lang.builtins import BUILTINS
from repro.lang.types import FloatType

__all__ = [
    "CODEGEN_CACHE_ENV",
    "CodegenExecutor",
    "CodegenProgram",
    "codegen_source",
    "codegen_stats",
    "compile_module_codegen",
    "module_digest",
    "reset_codegen_stats",
    "resolve_codegen_cache_dir",
]

#: Directory override for persisted codegen artifacts.  When unset, the
#: artifact store lives under ``<REPRO_CACHE_DIR>/codegen``; when
#: neither is set, artifacts are not persisted.
CODEGEN_CACHE_ENV = "REPRO_CODEGEN_CACHE_DIR"

#: Bumped whenever the lowering or artifact layout changes shape; stale
#: artifacts then miss on the header check and are recompiled.
_ARTIFACT_VERSION = 1
_ARTIFACT_MAGIC = b"RPCG"

_ref_eq = Interpreter._ref_eq

#: Plain-int compile/disk counters, readable even when the obs context
#: is disabled (the codegen backend only runs with obs disabled, so the
#: CI cold->warm smoke gates on these).
_STATS = {
    "compiles": 0,
    "memo_hits": 0,
    "disk_hits": 0,
    "disk_misses": 0,
    "errors": 0,
}


def codegen_stats() -> Dict[str, int]:
    """Snapshot of process-lifetime codegen compile/disk-cache counters."""
    return dict(_STATS)


def reset_codegen_stats() -> None:
    for key in _STATS:
        _STATS[key] = 0


def _count(stat: str, counter: str) -> None:
    _STATS[stat] += 1
    obs.current().count(counter)


def _ulbe_reg_name(exc: UnboundLocalError) -> Optional[str]:
    """Extract the local variable name from a pre-3.11 UnboundLocalError."""
    msg = str(exc)
    i = msg.find("'")
    j = msg.find("'", i + 1)
    if i < 0 or j <= i:
        return None
    return msg[i + 1 : j]


_SAN_RE = re.compile(r"[^0-9a-zA-Z_]")


def _san(name: str) -> str:
    return _SAN_RE.sub("_", name)


def module_digest(module: Module) -> str:
    """The sha256 of the module's canonical printed form.

    This is the module component of the analysis cache's workload digest
    (:func:`repro.cache.keys.module_workload_digest`), so one printed
    module maps to exactly one codegen artifact.
    """
    return hashlib.sha256(format_module(module).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Source emission
# ---------------------------------------------------------------------------

#: BinOps lowered to a native infix expression (operand semantics match
#: the interpreter's direct ``a < b`` etc.).
_INLINE_BIN = {"+", "-", "*", "<", "<=", ">", ">="}


def _alloc_tables(module: Module):
    """Deterministic walk collecting NewStruct/NewArray runtime constants.

    The generated code references struct defs and element types by
    occurrence index (``_SD[k]`` / ``_ET[k]``).  Both the emitter and the
    namespace builder run this same walk, so artifacts loaded from disk
    rebind against a freshly-walked table without re-running codegen.
    """
    sd: List[object] = []
    et: List[object] = []
    sd_idx: Dict[int, int] = {}
    et_idx: Dict[int, int] = {}
    for func in module.functions.values():
        for bname in func.block_order:
            for ins in func.blocks[bname].instrs:
                t = type(ins)
                if t is NewStruct:
                    sd_idx[id(ins)] = len(sd)
                    sd.append(module.structs[ins.struct_name])
                elif t is NewArray:
                    et_idx[id(ins)] = len(et)
                    et.append(ins.elem_type)
    return sd, et, sd_idx, et_idx


def _lit(v: object) -> str:
    if v is None:
        return "None"
    if v is True:
        return "True"
    if v is False:
        return "False"
    t = type(v)
    if t is int:
        return repr(v)
    if t is float:
        if v != v:
            return '_nan'
        if v == float("inf"):
            return '_inf'
        if v == float("-inf"):
            return '_ninf'
        return repr(v)
    if t is str:
        return repr(v)
    raise CompileError(f"unsupported constant {v!r}")


class _FuncEmitter:
    """Lowers one IR function to Python source lines."""

    def __init__(self, index: int, func, module: Module, gen_names: Dict[str, str],
                 sd_idx: Dict[int, int], et_idx: Dict[int, int]):
        self.index = index
        self.func = func
        self.module = module
        self.gen_names = gen_names
        self.sd_idx = sd_idx
        self.et_idx = et_idx
        self.gen_name = gen_names[func.name]
        self.lines: List[str] = []
        self._regs: Dict[Reg, str] = {}
        # Prologue feature flags, filled during a pre-scan.
        self.uses_globals = False
        self.uses_heap = False
        self.uses_print = False
        self.has_intrinsics = False
        self.fast_methods: set = set()

    # -- small helpers ------------------------------------------------------

    def reg(self, r: Reg) -> str:
        name = self._regs.get(r)
        if name is None:
            name = f"r_{len(self._regs)}"
            self._regs[r] = name
        return name

    def ex(self, op) -> str:
        if type(op) is Const:
            return _lit(op.value)
        return self.reg(op)

    def w(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def bare_reads(self, indent: int, operands) -> None:
        """Force undefined-register checks in interpreter operand order."""
        for op in operands:
            if type(op) is not Const:
                self.w(indent, self.reg(op))

    # -- pre-scan -----------------------------------------------------------

    def _scan(self) -> None:
        for bname in self.func.block_order:
            for ins in self.func.blocks[bname].instrs:
                t = type(ins)
                if t in (LoadGlobal, StoreGlobal):
                    self.uses_globals = True
                elif t in (NewStruct, NewArray):
                    self.uses_heap = True
                elif t is CallBuiltin and ins.func == "print":
                    self.uses_print = True
                elif t is Intrinsic:
                    self.has_intrinsics = True
                    m = self._fast_method(ins)
                    if m is not None:
                        self.fast_methods.add(m)

    @staticmethod
    def _fast_method(ins: Intrinsic) -> Optional[str]:
        """Which fast-dispatch method this intrinsic specializes to."""
        args = ins.args
        if not args or type(args[0]) is not Const:
            return None
        name = ins.func
        if name == _RT_GET and ins.dest is not None and len(args) == 2 \
                and type(args[1]) is Const:
            return "_get"
        if name == _RT_NEXT and ins.dest is not None and len(args) == 1:
            return "_next"
        if name == _RT_RECORD and ins.dest is None:
            return "_record"
        if name == _RT_PERMUTE and ins.dest is None and len(args) == 1:
            return "_permute"
        if name == _RT_VERIFY and ins.dest is None:
            return "_verify"
        return None

    # -- block layout -------------------------------------------------------

    #: Branch-arm inlining stops nesting past this depth; deeper blocks
    #: become dispatch heads so the generated source keeps a sane indent.
    _MAX_NEST = 30

    def _plan(self) -> None:
        """Partition blocks into dispatch *heads* and inlined blocks.

        A block with exactly one predecessor is emitted inline at its
        use site: jump targets extend the straight-line superblock, and
        branch targets nest under the branch's ``if``/``else`` arm (so a
        loop iteration runs header + body without a dispatch round
        trip).  Everything else — the entry, join points, loop headers —
        gets an integer id in the ``while``/``elif`` dispatch ladder.
        """
        func = self.func
        order = func.block_order
        preds: Dict[str, int] = {n: 0 for n in order}
        upred: Dict[str, str] = {}
        for name in order:
            instrs = func.blocks[name].instrs
            if not instrs:
                raise CompileError(f"empty block {name!r} in {func.name}")
            term = instrs[-1]
            t = type(term)
            if t is Jump:
                targets = (term.target,)
            elif t is Branch:
                targets = (term.true_target, term.false_target)
            else:
                targets = ()
            for tg in targets:
                preds[tg] = preds.get(tg, 0) + 1
                upred[tg] = name
        entry = func.entry
        head_set = {entry} | {
            n for n in order
            if preds[n] >= 2 or (preds[n] == 1 and upred.get(n) == n)
        }

        # Depth-cap pass: blocks that would nest too deeply under branch
        # arms are promoted to heads.
        def child_targets(name: str):
            term = func.blocks[name].instrs[-1]
            t = type(term)
            if t is Jump:
                return ((term.target, 0),)
            if t is Branch:
                return ((term.true_target, 1), (term.false_target, 1))
            return ()

        forced: set = set()

        def dfs(name: str, depth: int) -> None:
            for child, extra in child_targets(name):
                if child in head_set or child in forced:
                    continue
                nd = depth + extra
                if nd > self._MAX_NEST:
                    forced.add(child)
                else:
                    dfs(child, nd)

        processed: set = set()
        work = [n for n in order if n in head_set]
        while work:
            h = work.pop(0)
            if h in processed:
                continue
            processed.add(h)
            dfs(h, 0)
            for n in order:
                if n in forced and n not in processed and n not in work:
                    work.append(n)
        head_set |= forced

        self.heads = [entry] + [n for n in order if n != entry and n in head_set]
        self.head_index = {n: i for i, n in enumerate(self.heads)}
        self.inline = {n for n in order if n not in head_set}
        # The dispatch loop (and its `continue`s) is needed exactly when
        # some terminator targets a head.
        self.multi = len(self.heads) > 1 or preds.get(entry, 0) > 0

    # -- emission -----------------------------------------------------------

    def emit(self) -> List[str]:
        self._scan()
        func = self.func
        params = [reg for reg, _t in func.params]
        if len(set(params)) != len(params):
            raise CompileError(
                f"duplicate parameter register in {func.name}"
            )
        sig = ", ".join(["_state"] + [self.reg(p) for p in params])
        self._plan()
        multi = self.multi

        body: List[str] = []
        saved = self.lines
        self.lines = body
        # Indents: try-body sits at 2; in multi-block mode the dispatch
        # ladder adds a while (2) and an if/elif header (3), so block
        # code lands at 4.
        base = 4 if multi else 2
        for i, head in enumerate(self.heads):
            if multi:
                kw = "if" if i == 0 else "elif"
                self.w(3, f"{kw} _b == {i}:")
            self._emit_block(base, head)
        self.lines = saved

        w = self.w
        w(0, f"def {self.gen_name}({sig}):")
        if self.uses_globals:
            w(1, "_g = _state.globals")
        if self.uses_heap:
            w(1, "_heap = _state.heap")
        if self.uses_print:
            w(1, "_out_append = _state.output.append")
        if self.has_intrinsics:
            w(1, "_rt = _state.runtime")
            if self.fast_methods:
                w(1, "_rt_fast = _rt is not None and _rt.fast_intrinsics")
                w(1, "if _rt_fast:")
                for m in sorted(self.fast_methods):
                    w(2, f"_rt{m} = _rt.{m}")
        w(1, "_max = _state.max_steps")
        w(1, "_steps = _state.steps")
        w(1, "try:")
        if multi:
            w(2, "_b = 0")
            w(2, "while True:")
        self.lines.extend(body)
        w(1, "except UnboundLocalError as _exc:")
        w(2, "_n = getattr(_exc, 'name', None)")
        w(2, "if _n is None:")
        w(3, "_n = _ulbe(_exc)")
        w(2, f"_rg = _REGS_{self.index}.get(_n)")
        w(2, "if _rg is None:")
        w(3, "raise")
        w(2, "raise _MiniC('read of undefined register ' + _rg) from None")
        w(1, "finally:")
        w(2, "if _steps > _state.steps:")
        w(3, "_state.steps = _steps")
        w(0, "")
        regmap = {name: str(r) for r, name in self._regs.items()}
        self.lines.insert(0, f"_REGS_{self.index} = {regmap!r}")
        return self.lines

    def _emit_block(self, ind: int, bname: str) -> None:
        instrs = self.func.blocks[bname].instrs
        w = self.w
        w(ind, f"_steps += {len(instrs)}")
        w(ind, "if _steps > _max:")
        w(ind + 1, "raise _MiniC('step limit exceeded')")
        for ins in instrs[:-1]:
            self._emit_instr(ind, ins)
        self._emit_terminator(ind, instrs[-1])

    def _goto(self, ind: int, target: str) -> None:
        """Transfer control to ``target``: inline its code when it has a
        single predecessor, otherwise re-enter the dispatch loop."""
        if target in self.inline:
            self._emit_block(ind, target)
        else:
            self.w(ind, f"_b = {self.head_index[target]}")
            self.w(ind, "continue")

    def _emit_terminator(self, ind: int, term) -> None:
        t = type(term)
        w = self.w
        if t is Jump:
            self._goto(ind, term.target)
            return
        if t is Branch:
            cond = term.cond
            if type(cond) is Const:
                try:
                    taken = (
                        term.true_target if truthy(cond.value)
                        else term.false_target
                    )
                except MiniCRuntimeError:
                    # The constant is not usable as a condition; raise the
                    # interpreter's message at run time.
                    w(ind, f"_truthy({_lit(cond.value)})")
                    w(ind, "raise _MiniC('unreachable')")
                else:
                    self._goto(ind, taken)
                return
            c = self.reg(cond)
            # The bare `is True` / `is not False` identity tests keep the
            # hot boolean case off the generic _truthy path while the
            # first read of `c` still trips the undefined-register check
            # and _truthy still raises on invalid condition types, both in
            # interpreter order.
            w(ind, f"if {c} is True or ({c} is not False and _truthy({c})):")
            self._goto(ind + 1, term.true_target)
            w(ind, "else:")
            self._goto(ind + 1, term.false_target)
            return
        if t is Ret:
            value = term.value
            if value is None:
                w(ind, "_state.retval = None")
                w(ind, "return None")
            elif type(value) is Const:
                v = _lit(value.value)
                w(ind, f"_state.retval = {v}")
                w(ind, f"return {v}")
            else:
                r = self.reg(value)
                w(ind, f"_state.retval = {r}")
                w(ind, f"return {r}")
            return
        # Mirror the interpreter: a malformed last instruction faults at
        # run time without executing it.
        w(ind, f"raise _MiniC({('bad terminator ' + str(term))!r})")

    # -- instructions -------------------------------------------------------

    def _emit_instr(self, ind: int, ins) -> None:
        t = type(ins)
        w = self.w
        if t is Mov:
            w(ind, f"{self.reg(ins.dest)} = {self.ex(ins.src)}")
        elif t is BinOp:
            self._emit_binop(ind, ins)
        elif t is UnOp:
            self._emit_unop(ind, ins)
        elif t is GetIndex:
            self._emit_getindex(ind, ins)
        elif t is SetIndex:
            self._emit_setindex(ind, ins)
        elif t is GetField:
            self._emit_getfield(ind, ins)
        elif t is SetField:
            self._emit_setfield(ind, ins)
        elif t is LoadGlobal:
            w(ind, f"{self.reg(ins.dest)} = _g[{ins.name!r}]")
        elif t is StoreGlobal:
            w(ind, f"_g[{ins.name!r}] = {self.ex(ins.src)}")
        elif t is ArrayLen:
            a = self.ex(ins.arr)
            w(ind, f"if {a} is None:")
            w(ind + 1, f"raise _MiniC({f'len(null) (line {ins.line})'!r})")
            w(ind, f"{self.reg(ins.dest)} = len({a}.data)")
        elif t is NewStruct:
            k = self.sd_idx[id(ins)]
            w(ind, f"{self.reg(ins.dest)} = _heap.new_struct(_SD[{k}])")
        elif t is NewArray:
            k = self.et_idx[id(ins)]
            w(ind, f"{self.reg(ins.dest)} = "
                   f"_heap.new_array(_ET[{k}], {self.ex(ins.length)})")
        elif t is Call:
            self._emit_call(ind, ins)
        elif t is CallBuiltin:
            self._emit_callbuiltin(ind, ins)
        elif t is Intrinsic:
            self._emit_intrinsic(ind, ins)
        else:
            raise CompileError(f"uncompilable instruction {ins}")

    def _emit_binop(self, ind: int, ins: BinOp) -> None:
        d = self.reg(ins.dest)
        l = self.ex(ins.lhs)
        r = self.ex(ins.rhs)
        op = ins.op
        if op in _INLINE_BIN:
            self.w(ind, f"{d} = {l} {op} {r}")
        elif op == "==":
            self.w(ind, f"{d} = _refeq({l}, {r})")
        elif op == "!=":
            self.w(ind, f"{d} = not _refeq({l}, {r})")
        elif op == "%":
            self.w(ind, f"{d} = _cmod({l}, {r})")
        elif op == "/":
            fn = "_fdiv" if isinstance(ins.result_type, FloatType) else "_tdiv"
            self.w(ind, f"{d} = {fn}({l}, {r})")
        else:
            raise CompileError(f"unknown binary operator {op}")

    def _emit_unop(self, ind: int, ins: UnOp) -> None:
        d = self.reg(ins.dest)
        e = self.ex(ins.operand)
        if ins.op == "-":
            self.w(ind, f"{d} = -({e})")
        elif ins.op == "!":
            self.w(ind, f"{d} = not _truthy({e})")
        elif ins.op == "itof":
            self.w(ind, f"{d} = float({e})")
        else:
            raise CompileError(f"unknown unary operator {ins.op}")

    def _emit_getfield(self, ind: int, ins: GetField) -> None:
        msg = f"null dereference reading .{ins.field} (line {ins.line})"
        if type(ins.obj) is Const:
            # The only struct-typed constant is null: always a fault.
            self.w(ind, f"raise _MiniC({msg!r})")
            return
        o = self.reg(ins.obj)
        self.w(ind, f"if {o} is None:")
        self.w(ind + 1, f"raise _MiniC({msg!r})")
        self.w(ind, f"{self.reg(ins.dest)} = {o}.fields[{ins.field!r}]")

    def _emit_setfield(self, ind: int, ins: SetField) -> None:
        msg = f"null dereference writing .{ins.field} (line {ins.line})"
        if type(ins.obj) is Const:
            self.w(ind, f"raise _MiniC({msg!r})")
            return
        o = self.reg(ins.obj)
        self.w(ind, f"if {o} is None:")
        self.w(ind + 1, f"raise _MiniC({msg!r})")
        # Value is read after the null check (assignment RHS first), like
        # the interpreter.
        self.w(ind, f"{o}.fields[{ins.field!r}] = {self.ex(ins.value)}")

    def _emit_getindex(self, ind: int, ins: GetIndex) -> None:
        line = ins.line
        nullmsg = f"null array read (line {line})"
        i = self.ex(ins.index)
        if type(ins.arr) is Const:
            # Constant null array: the index operand is still read first.
            self.bare_reads(ind, (ins.index,))
            self.w(ind, f"raise _MiniC({nullmsg!r})")
            return
        a = self.reg(ins.arr)
        self.w(ind, f"if {a} is None:")
        # The interpreter reads the index before the null check; fire a
        # pending undefined-register fault first on this cold path.
        self.bare_reads(ind + 1, (ins.index,))
        self.w(ind + 1, f"raise _MiniC({nullmsg!r})")
        self.w(ind, f"_t0 = {a}.data")
        self.w(ind, f"if 0 <= {i} < len(_t0):")
        self.w(ind + 1, f"{self.reg(ins.dest)} = _t0[{i}]")
        self.w(ind, "else:")
        self.w(
            ind + 1,
            "raise _MiniC(f'index {" + i + "} out of bounds "
            "[0,{len(_t0)}) (line " + str(line) + ")')",
        )

    def _emit_setindex(self, ind: int, ins: SetIndex) -> None:
        line = ins.line
        nullmsg = f"null array write (line {line})"
        i = self.ex(ins.index)
        if type(ins.arr) is Const:
            self.bare_reads(ind, (ins.index,))
            self.w(ind, f"raise _MiniC({nullmsg!r})")
            return
        a = self.reg(ins.arr)
        self.w(ind, f"if {a} is None:")
        self.bare_reads(ind + 1, (ins.index,))
        self.w(ind + 1, f"raise _MiniC({nullmsg!r})")
        self.w(ind, f"_t0 = {a}.data")
        self.w(ind, f"if 0 <= {i} < len(_t0):")
        # Value is read after the bounds check (assignment RHS before the
        # subscript store), like the interpreter.
        self.w(ind + 1, f"_t0[{i}] = {self.ex(ins.value)}")
        self.w(ind, "else:")
        self.w(
            ind + 1,
            "raise _MiniC(f'index {" + i + "} out of bounds "
            "[0,{len(_t0)}) (line " + str(line) + ")')",
        )

    def _emit_call(self, ind: int, ins: Call) -> None:
        callee = self.module.functions.get(ins.func)
        if callee is None:
            raise CompileError(f"call to unknown function {ins.func!r}")
        args = [self.ex(a) for a in ins.args]
        if len(ins.args) != len(callee.params):
            # Statically-known arity mismatch: args are still read first.
            self.bare_reads(ind, ins.args)
            msg = (
                f"{ins.func} expects {len(callee.params)} args, "
                f"got {len(ins.args)}"
            )
            self.w(ind, f"raise _MiniC({msg!r})")
            return
        call = f"{self.gen_names[ins.func]}({', '.join(['_state'] + args)})"
        self.w(ind, "_state.steps = _steps")
        if ins.dest is not None:
            self.w(ind, f"{self.reg(ins.dest)} = {call}")
        else:
            self.w(ind, call)
        self.w(ind, "_steps = _state.steps")

    def _emit_callbuiltin(self, ind: int, ins: CallBuiltin) -> None:
        args = [self.ex(a) for a in ins.args]
        if ins.func == "print":
            if not args:
                self.w(ind, '_out_append("")')
            elif len(args) == 1:
                self.w(ind, f"_out_append(_fmt({args[0]}))")
            else:
                tup = ", ".join(args)
                self.w(ind, f"_out_append(' '.join(map(_fmt, ({tup}))))")
            return
        builtin = BUILTINS.get(ins.func)
        if builtin is None or builtin.impl is None:
            raise CompileError(f"builtin {ins.func!r} has no host implementation")
        call = f"_bi_{_san(ins.func)}({', '.join(args)})"
        self.w(ind, "try:")
        if ins.dest is not None:
            self.w(ind + 1, f"{self.reg(ins.dest)} = {call}")
        else:
            self.w(ind + 1, call)
        self.w(ind, "except (ValueError, OverflowError, ZeroDivisionError) as _be:")
        self.w(ind + 1, f"raise _MiniC({ins.func + ': '!r} + str(_be)) from None")

    def _emit_intrinsic(self, ind: int, ins: Intrinsic) -> None:
        fast = self._fast_method(ins)
        w = self.w
        if fast is not None:
            label = _lit(ins.args[0].value)
            w(ind, "if _rt_fast:")
            if fast == "_get":
                idx = _lit(ins.args[1].value)
                w(ind + 1, f"{self.reg(ins.dest)} = _rt_get({label}, {idx})")
            elif fast == "_next":
                w(ind + 1, f"{self.reg(ins.dest)} = _rt_next({label})")
            elif fast == "_record":
                vals = [self.ex(a) for a in ins.args[1:]]
                tup = ", ".join(vals) + ("," if len(vals) == 1 else "")
                w(ind + 1, f"_rt_record({label}, ({tup}))")
            elif fast == "_permute":
                w(ind + 1, f"_rt_permute({label})")
            else:  # _verify
                vals = ", ".join(self.ex(a) for a in ins.args[1:])
                w(ind + 1, f"_rt_verify(_state, {label}, [{vals}])")
            w(ind, "else:")
            self._emit_intrinsic_generic(ind + 1, ins)
        else:
            self._emit_intrinsic_generic(ind, ins)

    def _emit_intrinsic_generic(self, ind: int, ins: Intrinsic) -> None:
        # Interpreter order: evaluate args, then fault if no runtime.
        self.bare_reads(ind, ins.args)
        nort = f"intrinsic {ins.func!r} executed without a runtime"
        self.w(ind, "if _rt is None:")
        self.w(ind + 1, f"raise _MiniC({nort!r})")
        args = ", ".join(self.ex(a) for a in ins.args)
        call = f"_rt.handle_intrinsic(_state, {ins.func!r}, [{args}])"
        if ins.dest is not None:
            self.w(ind, f"{self.reg(ins.dest)} = {call}")
        else:
            self.w(ind, call)


def codegen_source(module: Module) -> str:
    """Lower ``module`` to the Python source text the backend compiles.

    Exposed for tests and debugging; :func:`compile_module_codegen` is
    the cached entry point.
    """
    _sd, _et, sd_idx, et_idx = _alloc_tables(module)
    gen_names = {
        name: f"_fn_{i}_{_san(name)}"
        for i, name in enumerate(module.functions)
    }
    lines: List[str] = ["# generated by repro.interp.codegen", ""]
    for i, (name, func) in enumerate(module.functions.items()):
        emitter = _FuncEmitter(i, func, module, gen_names, sd_idx, et_idx)
        lines.extend(emitter.emit())
    return "\n".join(lines) + "\n"


def _cmod_fused(a, b):
    """C-style remainder, semantically identical to the interpreter's
    ``_c_mod`` but flattened into one frame (``%`` is hot enough in the
    PLDS kernels that the nested ``_trunc_div`` call shows in profiles).
    """
    if b == 0:
        raise MiniCRuntimeError("integer division by zero")
    q = a // b
    if q < 0 and q * b != a:
        q += 1
    return a - q * b


def _build_namespace(module: Module) -> Dict[str, object]:
    """Runtime bindings the generated code resolves as globals."""
    sd, et, _sd_idx, _et_idx = _alloc_tables(module)
    ns: Dict[str, object] = {
        "_MiniC": MiniCRuntimeError,
        "_truthy": truthy,
        "_fmt": format_value,
        "_refeq": _ref_eq,
        "_cmod": _cmod_fused,
        "_tdiv": _trunc_div,
        "_fdiv": _fdiv,
        "_ulbe": _ulbe_reg_name,
        "_SD": sd,
        "_ET": et,
        "_nan": float("nan"),
        "_inf": float("inf"),
        "_ninf": float("-inf"),
    }
    for name, builtin in BUILTINS.items():
        if builtin.impl is not None:
            ns[f"_bi_{_san(name)}"] = builtin.impl
    return ns


# ---------------------------------------------------------------------------
# Disk artifact store
# ---------------------------------------------------------------------------


def resolve_codegen_cache_dir(cache_dir: Optional[str] = None) -> Optional[str]:
    """Resolve the artifact directory.

    Precedence: explicit argument (empty string disables), then
    ``REPRO_CODEGEN_CACHE_DIR``, then ``<REPRO_CACHE_DIR>/codegen``,
    then disabled.
    """
    if cache_dir is not None:
        cache_dir = cache_dir.strip()
        return os.path.expanduser(cache_dir) if cache_dir else None
    env = os.environ.get(CODEGEN_CACHE_ENV, "").strip()
    if env:
        return os.path.expanduser(env)
    base = resolve_cache_dir(None)
    if base is None:
        return None
    return os.path.join(base, "codegen")


def _artifact_path(cache_dir: str, digest: str) -> str:
    return os.path.join(cache_dir, f"{digest}.rpcg")


def _artifact_header(payload: bytes) -> bytes:
    magic = importlib.util.MAGIC_NUMBER
    return (
        _ARTIFACT_MAGIC
        + bytes([_ARTIFACT_VERSION, len(magic)])
        + magic
        + hashlib.sha256(payload).digest()
    )


def _load_artifact(cache_dir: str, digest: str):
    """Load a persisted code object, or None on any miss/corruption."""
    try:
        with open(_artifact_path(cache_dir, digest), "rb") as fh:
            blob = fh.read()
    except OSError:
        return None
    magic = importlib.util.MAGIC_NUMBER
    header = _artifact_header(b"")[: 6 + len(magic)]
    if len(blob) < len(header) + 32 or not blob.startswith(header):
        return None
    checksum = blob[len(header) : len(header) + 32]
    payload = blob[len(header) + 32 :]
    if hashlib.sha256(payload).digest() != checksum:
        return None
    try:
        code = marshal.loads(payload)
    except (ValueError, EOFError, TypeError):
        return None
    if not isinstance(code, type(compile("0", "<s>", "eval"))):
        return None
    return code


def _store_artifact(cache_dir: str, digest: str, code) -> None:
    """Best-effort atomic write; storage failures never fail the run."""
    try:
        payload = marshal.dumps(code)
        os.makedirs(cache_dir, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(_artifact_header(payload) + payload)
            os.replace(tmp, _artifact_path(cache_dir, digest))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except (OSError, ValueError):
        pass


# ---------------------------------------------------------------------------
# Module compilation (memoized per Module object, persisted per digest)
# ---------------------------------------------------------------------------


class CodegenFunction:
    """One lowered function: a plain Python callable plus its arity."""

    __slots__ = ("name", "nparams", "pyfunc")

    def __init__(self, name: str, nparams: int, pyfunc: Callable):
        self.name = name
        self.nparams = nparams
        self.pyfunc = pyfunc


class CodegenProgram:
    """A codegen-compiled :class:`~repro.ir.function.Module`."""

    __slots__ = ("module", "functions")

    def __init__(self, module: Module):
        self.module = module
        self.functions: Dict[str, CodegenFunction] = {}


#: Same shape and policy as the closure backend's module cache: bounded
#: LRU keyed by ``id(module)`` with an identity guard against id reuse.
_MODULE_CACHE: "OrderedDict[int, Tuple[Module, CodegenProgram]]" = OrderedDict()
_MODULE_CACHE_MAX = 64


def compile_module_codegen(
    module: Module, cache_dir: Optional[str] = None
) -> CodegenProgram:
    """Lower ``module`` to Python bytecode, once; results are cached.

    In-process results are memoized per module object; across processes
    the compiled code object is persisted under the module digest (see
    :func:`resolve_codegen_cache_dir`; pass ``cache_dir=""`` to disable
    persistence).  Raises :class:`CompileError` when the module cannot
    be lowered — callers fall back to the interpreter.
    """
    key = id(module)
    entry = _MODULE_CACHE.get(key)
    if entry is not None and entry[0] is module:
        _MODULE_CACHE.move_to_end(key)
        _count("memo_hits", "codegen.compile.memo_hits")
        return entry[1]

    try:
        program = _compile_uncached(module, cache_dir)
    except CompileError:
        _count("errors", "codegen.compile.errors")
        raise
    except Exception as exc:
        _count("errors", "codegen.compile.errors")
        raise CompileError(f"codegen compilation failed: {exc!r}") from exc

    _MODULE_CACHE[key] = (module, program)
    while len(_MODULE_CACHE) > _MODULE_CACHE_MAX:
        _MODULE_CACHE.popitem(last=False)
    return program


def _compile_uncached(module: Module, cache_dir: Optional[str]) -> CodegenProgram:
    directory = resolve_codegen_cache_dir(cache_dir)
    code = None
    digest = None
    if directory is not None:
        digest = module_digest(module)
        code = _load_artifact(directory, digest)
        if code is not None:
            _count("disk_hits", "codegen.disk_cache.hits")
        else:
            _count("disk_misses", "codegen.disk_cache.misses")
    if code is None:
        source = codegen_source(module)
        try:
            code = compile(source, "<repro-codegen>", "exec")
        except SyntaxError as exc:  # pragma: no cover - emitter bug guard
            raise CompileError(f"generated source failed to compile: {exc}")
        _count("compiles", "codegen.compile.compiles")
        if directory is not None:
            _store_artifact(directory, digest, code)

    ns = _build_namespace(module)
    exec(code, ns)
    program = CodegenProgram(module)
    for i, (name, func) in enumerate(module.functions.items()):
        pyfunc = ns.get(f"_fn_{i}_{_san(name)}")
        if not callable(pyfunc):
            # A stale or foreign artifact that passed the checksum but
            # does not define this module's functions: recompile fresh.
            raise CompileError(f"artifact missing function {name!r}")
        program.functions[name] = CodegenFunction(name, len(func.params), pyfunc)
    return program


class CodegenExecutor:
    """One execution of a codegen-compiled program.

    Surface-compatible with
    :class:`~repro.interp.compiler.CompiledExecutor`: ``run``, ``steps``,
    ``globals``, ``heap``, ``output``/``output_text``, ``retval`` and
    ``module`` — everything the DCA runtime and the schedule engine
    touch.
    """

    __slots__ = (
        "program",
        "module",
        "heap",
        "globals",
        "runtime",
        "max_steps",
        "steps",
        "output",
        "retval",
    )

    def __init__(
        self,
        program,
        runtime: Optional[RuntimeHooks] = None,
        max_steps: Optional[int] = None,
    ):
        if isinstance(program, Module):
            program = compile_module_codegen(program)
        self.program = program
        self.module = program.module
        self.heap = Heap()
        self.globals: Dict[str, object] = {
            name: gv.init for name, gv in self.module.globals.items()
        }
        self.runtime = runtime
        self.max_steps = max_steps or _DEFAULT_MAX_STEPS
        self.steps = 0
        self.output: List[str] = []
        self.retval: object = None

    def run(self, entry: str = "main", args: Optional[List[object]] = None) -> object:
        cf = self.program.functions.get(entry)
        if cf is None:
            raise MiniCRuntimeError(f"no function named {entry!r}")
        args = list(args or [])
        if len(args) != cf.nparams:
            raise MiniCRuntimeError(
                f"{entry} expects {cf.nparams} args, got {len(args)}"
            )
        return cf.pyfunc(self, *args)

    def output_text(self) -> str:
        if not self.output:
            return ""
        return "\n".join(self.output) + "\n"
