"""Closure-compilation execution backend.

The tree-walking :class:`~repro.interp.interpreter.Interpreter` pays, for
every executed instruction, a ``type()``-keyed dict dispatch, a
``Const``-vs-``Reg`` check per operand, a dict lookup per register (with
the dataclass ``Reg.__hash__`` recomputed each time) and the ``BinOp``
``if/elif`` ladder.  DCA's cost model is "one golden run plus one run per
testing schedule" (paper §IV-B), so the same instrumented module is
executed many times — a compile-once-replay-many backend amortizes all of
that per-step work into a single lowering pass:

* every IR :class:`~repro.ir.function.Function` is lowered **once** into
  nested Python closures — one closure per instruction, chained into
  direct-threaded basic blocks (each block closure returns the next
  block, so there is no dispatch table at run time);
* registers are pre-resolved to **list slots** (no dict, no hashing);
* operands are specialized at compile time: constants are baked into the
  closure, so there is no per-step ``Const`` check;
* ``BinOp`` is specialized per operator and result type, replacing the
  ``if/elif`` ladder with a captured C-level function
  (``operator.add`` & co, or the shared C-semantics helpers);
* fault messages (null dereference, bounds, division) are pre-formatted
  at compile time where possible, and always carry the same line numbers
  and wording as the interpreter's.

The backend preserves **exact interpreter semantics**: step accounting
(``len(block.instrs)`` charged on block entry, checked against
``max_steps`` before the block body runs), C-style division/remainder,
reference equality, MiniC truthiness, builtin error wrapping, and
intrinsic dispatch into the DCA runtime.  The executor object exposes the
same surface the runtime touches (``globals``, ``heap``, ``steps``,
``output_text``), so :class:`~repro.core.runtime.DcaRuntime` works
unchanged.

It deliberately supports **no observers and no profiler**: observability-
bearing paths (dynamic-dependence profiling, ``repro profile``, memory
and loop observers) always fall back to the tree-walking interpreter —
:func:`create_executor` encodes that rule.  Reports produced under the
compiled backend are byte-identical to the interpreter's; the
differential fuzz harness and ``benchmarks/test_compiled_backend_speedup``
enforce it.
"""

from __future__ import annotations

import operator
import os
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import repro.obs as obs
from repro.interp.interpreter import (
    _DEFAULT_MAX_STEPS,
    _c_mod,
    _trunc_div,
    Interpreter,
    RuntimeHooks,
)
from repro.interp.values import (
    Heap,
    MiniCRuntimeError,
    format_value,
    truthy,
)
from repro.ir.function import Module
from repro.ir.instructions import (
    ArrayLen,
    BinOp,
    Branch,
    Call,
    CallBuiltin,
    Const,
    GetField,
    GetIndex,
    Intrinsic,
    Jump,
    LoadGlobal,
    Mov,
    NewArray,
    NewStruct,
    Operand,
    Reg,
    Ret,
    SetField,
    SetIndex,
    StoreGlobal,
    UnOp,
)
from repro.lang.builtins import BUILTINS
from repro.lang.types import FloatType

__all__ = [
    "EXEC_BACKENDS",
    "EXEC_BACKEND_ENV",
    "CompileError",
    "CompiledExecutor",
    "CompiledProgram",
    "compile_module",
    "create_executor",
    "resolve_exec_backend",
]

#: Environment knob consulted when no explicit backend is given (lets CI
#: run the whole suite under the compiled backend).
EXEC_BACKEND_ENV = "REPRO_EXEC_BACKEND"

#: Supported execution backends.  Single source of truth: CLI choices
#: and :class:`repro.api.AnalysisConfig` validation both derive from
#: this tuple, so a backend added here is reachable from every surface.
EXEC_BACKENDS = ("interp", "compiled", "codegen")


def resolve_exec_backend(backend: Optional[str] = None) -> str:
    """Resolve an execution backend name.

    Resolution order: explicit argument, then the ``REPRO_EXEC_BACKEND``
    environment variable, then ``interp``.
    """
    if backend is None:
        backend = os.environ.get(EXEC_BACKEND_ENV, "").strip() or None
    if backend is None:
        return "interp"
    if backend not in EXEC_BACKENDS:
        raise ValueError(
            f"unknown exec backend {backend!r}; expected one of {EXEC_BACKENDS}"
        )
    return backend


class CompileError(Exception):
    """Raised when a module cannot be closure-compiled.

    Callers treat this as "use the interpreter instead" — compilation is
    an optimization, never a semantic requirement.
    """


class _Undefined:
    """Sentinel filling frame slots before their register is written."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<undefined>"


_UNDEF = _Undefined()


def _raise_undef(reg: Reg) -> None:
    raise MiniCRuntimeError(f"read of undefined register {reg}")


_ref_eq = Interpreter._ref_eq


def _ref_ne(a: object, b: object) -> bool:
    return not _ref_eq(a, b)


def _fdiv(a: object, b: object) -> object:
    if b == 0:
        raise MiniCRuntimeError("float division by zero")
    return a / b


def _not_truthy(v: object) -> bool:
    return not truthy(v)


#: BinOp operator -> C-level implementation (``/`` handled separately:
#: its meaning depends on the instruction's result type).
_BIN_FUNCS: Dict[str, Callable] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "%": _c_mod,
    "==": _ref_eq,
    "!=": _ref_ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: UnOp operator -> implementation.
_UN_FUNCS: Dict[str, Callable] = {
    "-": operator.neg,
    "!": _not_truthy,
    "itof": float,
}


class _Block:
    """One direct-threaded basic block: op closures plus a terminator.

    ``term(state, frame)`` returns the next ``_Block`` or ``None`` for a
    return; ``n`` is the step charge (``len(block.instrs)``, terminator
    included — identical to the interpreter's accounting).  After
    compilation the block is *sealed*: ``run(state, frame)`` executes the
    whole body and returns the next block, with small bodies unrolled so
    the dispatch loop pays one call per block instead of one per
    instruction.
    """

    __slots__ = ("ops", "term", "n", "run")


def _seal_block(blk: _Block) -> None:
    """Fuse a block's op chain and terminator into one ``run`` closure."""
    ops = blk.ops
    term = blk.term
    n = len(ops)
    if n == 0:
        blk.run = term
        return
    if n == 1:
        op0 = ops[0]

        def run(state, frame):
            op0(state, frame)
            return term(state, frame)
    elif n == 2:
        op0, op1 = ops

        def run(state, frame):
            op0(state, frame)
            op1(state, frame)
            return term(state, frame)
    elif n == 3:
        op0, op1, op2 = ops

        def run(state, frame):
            op0(state, frame)
            op1(state, frame)
            op2(state, frame)
            return term(state, frame)
    elif n == 4:
        op0, op1, op2, op3 = ops

        def run(state, frame):
            op0(state, frame)
            op1(state, frame)
            op2(state, frame)
            op3(state, frame)
            return term(state, frame)
    else:
        def run(state, frame):
            for op in ops:
                op(state, frame)
            return term(state, frame)
    blk.run = run


class CompiledFunction:
    """A lowered IR function; ``call(state, args)`` executes it."""

    __slots__ = ("name", "nparams", "call")

    def __init__(self, name: str, nparams: int):
        self.name = name
        self.nparams = nparams
        self.call: Optional[Callable] = None


class CompiledProgram:
    """A closure-compiled :class:`~repro.ir.function.Module`.

    Compilation touches only immutable module state (structs, function
    bodies); execution never mutates the module, so one compiled program
    is safely shared by any number of sequential executions.
    """

    __slots__ = ("module", "functions")

    def __init__(self, module: Module):
        self.module = module
        self.functions: Dict[str, CompiledFunction] = {}


# ---------------------------------------------------------------------------
# Operand helpers
# ---------------------------------------------------------------------------


def _src(op: Operand, slot: Callable[[Reg], int]) -> Tuple[bool, object, int, Optional[Reg]]:
    """Compile one use-position operand.

    Returns ``(is_const, const_value, slot_index, reg)`` — exactly one of
    the value/slot halves is meaningful.
    """
    if type(op) is Const:
        return True, op.value, -1, None
    return False, None, slot(op), op


def _make_args_eval(
    operands: Sequence[Operand], slot: Callable[[Reg], int]
) -> Callable[[List[object]], List[object]]:
    """Build ``eval_args(frame) -> list`` with small-arity specializations."""
    plan = tuple(_src(a, slot) for a in operands)
    n = len(plan)
    if n == 0:
        def eval_args(frame):
            return []
        return eval_args
    if n == 1:
        c0, v0, s0, r0 = plan[0]
        if c0:
            def eval_args(frame):
                return [v0]
        else:
            def eval_args(frame):
                a = frame[s0]
                if a is _UNDEF:
                    _raise_undef(r0)
                return [a]
        return eval_args
    if n == 2:
        c0, v0, s0, r0 = plan[0]
        c1, v1, s1, r1 = plan[1]

        def eval_args(frame):
            if c0:
                a = v0
            else:
                a = frame[s0]
                if a is _UNDEF:
                    _raise_undef(r0)
            if c1:
                b = v1
            else:
                b = frame[s1]
                if b is _UNDEF:
                    _raise_undef(r1)
            return [a, b]
        return eval_args

    def eval_args(frame):
        args = []
        append = args.append
        for const, v, s, r in plan:
            if const:
                append(v)
            else:
                a = frame[s]
                if a is _UNDEF:
                    _raise_undef(r)
                append(a)
        return args
    return eval_args


# ---------------------------------------------------------------------------
# Instruction compilation
# ---------------------------------------------------------------------------


def _c_mov(instr: Mov, slot, program) -> Callable:
    d = slot(instr.dest)
    const, v, s, r = _src(instr.src, slot)
    if const:
        def run(state, frame):
            frame[d] = v
    else:
        def run(state, frame):
            a = frame[s]
            if a is _UNDEF:
                _raise_undef(r)
            frame[d] = a
    return run


def _c_binop(instr: BinOp, slot, program) -> Callable:
    op = instr.op
    if op == "/":
        fn = _fdiv if isinstance(instr.result_type, FloatType) else _trunc_div
    else:
        fn = _BIN_FUNCS.get(op)
        if fn is None:
            raise CompileError(f"unknown binary operator {op}")
    d = slot(instr.dest)
    lc, lv, ls, lr = _src(instr.lhs, slot)
    rc, rv, rs, rr = _src(instr.rhs, slot)
    if lc and rc:
        # Both operands baked; the operator still runs per step so fault
        # semantics (e.g. a constant division by zero) are unchanged.
        def run(state, frame):
            frame[d] = fn(lv, rv)
    elif lc:
        def run(state, frame):
            b = frame[rs]
            if b is _UNDEF:
                _raise_undef(rr)
            frame[d] = fn(lv, b)
    elif rc:
        def run(state, frame):
            a = frame[ls]
            if a is _UNDEF:
                _raise_undef(lr)
            frame[d] = fn(a, rv)
    else:
        def run(state, frame):
            a = frame[ls]
            if a is _UNDEF:
                _raise_undef(lr)
            b = frame[rs]
            if b is _UNDEF:
                _raise_undef(rr)
            frame[d] = fn(a, b)
    return run


def _c_unop(instr: UnOp, slot, program) -> Callable:
    fn = _UN_FUNCS.get(instr.op)
    if fn is None:
        raise CompileError(f"unknown unary operator {instr.op}")
    d = slot(instr.dest)
    const, v, s, r = _src(instr.operand, slot)
    if const:
        def run(state, frame):
            frame[d] = fn(v)
    else:
        def run(state, frame):
            a = frame[s]
            if a is _UNDEF:
                _raise_undef(r)
            frame[d] = fn(a)
    return run


def _c_newstruct(instr: NewStruct, slot, program) -> Callable:
    d = slot(instr.dest)
    sdef = program.module.structs[instr.struct_name]

    def run(state, frame):
        frame[d] = state.heap.new_struct(sdef)
    return run


def _c_newarray(instr: NewArray, slot, program) -> Callable:
    d = slot(instr.dest)
    elem_type = instr.elem_type
    const, v, s, r = _src(instr.length, slot)
    if const:
        def run(state, frame):
            frame[d] = state.heap.new_array(elem_type, v)
    else:
        def run(state, frame):
            length = frame[s]
            if length is _UNDEF:
                _raise_undef(r)
            frame[d] = state.heap.new_array(elem_type, length)
    return run


def _c_getfield(instr: GetField, slot, program) -> Callable:
    d = slot(instr.dest)
    fname = instr.field
    msg = f"null dereference reading .{instr.field} (line {instr.line})"
    const, v, s, r = _src(instr.obj, slot)
    if const:
        def run(state, frame):
            if v is None:
                raise MiniCRuntimeError(msg)
            frame[d] = v.fields[fname]
    else:
        def run(state, frame):
            obj = frame[s]
            if obj is _UNDEF:
                _raise_undef(r)
            if obj is None:
                raise MiniCRuntimeError(msg)
            frame[d] = obj.fields[fname]
    return run


def _c_setfield(instr: SetField, slot, program) -> Callable:
    fname = instr.field
    msg = f"null dereference writing .{instr.field} (line {instr.line})"
    oc, ov, os_, orr = _src(instr.obj, slot)
    vc, vv, vs, vr = _src(instr.value, slot)

    # The interpreter reads the value operand only after the null check.
    if not oc and not vc:
        def run(state, frame):
            obj = frame[os_]
            if obj is _UNDEF:
                _raise_undef(orr)
            if obj is None:
                raise MiniCRuntimeError(msg)
            value = frame[vs]
            if value is _UNDEF:
                _raise_undef(vr)
            obj.fields[fname] = value
    elif not oc:
        def run(state, frame):
            obj = frame[os_]
            if obj is _UNDEF:
                _raise_undef(orr)
            if obj is None:
                raise MiniCRuntimeError(msg)
            obj.fields[fname] = vv
    else:
        def run(state, frame):
            if ov is None:
                raise MiniCRuntimeError(msg)
            if vc:
                obj_value = vv
            else:
                obj_value = frame[vs]
                if obj_value is _UNDEF:
                    _raise_undef(vr)
            ov.fields[fname] = obj_value
    return run


def _c_getindex(instr: GetIndex, slot, program) -> Callable:
    d = slot(instr.dest)
    line = instr.line
    nullmsg = f"null array read (line {line})"
    ac, av, as_, ar = _src(instr.arr, slot)
    ic, iv, is_, ir = _src(instr.index, slot)
    if not ac and not ic:
        def run(state, frame):
            arr = frame[as_]
            if arr is _UNDEF:
                _raise_undef(ar)
            idx = frame[is_]
            if idx is _UNDEF:
                _raise_undef(ir)
            if arr is None:
                raise MiniCRuntimeError(nullmsg)
            data = arr.data
            if 0 <= idx < len(data):
                frame[d] = data[idx]
            else:
                raise MiniCRuntimeError(
                    f"index {idx} out of bounds [0,{len(data)}) (line {line})"
                )
    elif not ac:
        def run(state, frame):
            arr = frame[as_]
            if arr is _UNDEF:
                _raise_undef(ar)
            if arr is None:
                raise MiniCRuntimeError(nullmsg)
            data = arr.data
            if 0 <= iv < len(data):
                frame[d] = data[iv]
            else:
                raise MiniCRuntimeError(
                    f"index {iv} out of bounds [0,{len(data)}) (line {line})"
                )
    else:
        def run(state, frame):
            if ic:
                idx = iv
            else:
                idx = frame[is_]
                if idx is _UNDEF:
                    _raise_undef(ir)
            if av is None:
                raise MiniCRuntimeError(nullmsg)
            data = av.data
            if 0 <= idx < len(data):
                frame[d] = data[idx]
            else:
                raise MiniCRuntimeError(
                    f"index {idx} out of bounds [0,{len(data)}) (line {line})"
                )
    return run


def _c_setindex(instr: SetIndex, slot, program) -> Callable:
    line = instr.line
    nullmsg = f"null array write (line {line})"
    ac, av, as_, ar = _src(instr.arr, slot)
    ic, iv, is_, ir = _src(instr.index, slot)
    vc, vv, vs, vr = _src(instr.value, slot)

    # Interpreter order: arr, index, null check, bounds check, then the
    # value read.  Keep it so faults fire in the same order.
    def run(state, frame):
        if ac:
            arr = av
        else:
            arr = frame[as_]
            if arr is _UNDEF:
                _raise_undef(ar)
        if ic:
            idx = iv
        else:
            idx = frame[is_]
            if idx is _UNDEF:
                _raise_undef(ir)
        if arr is None:
            raise MiniCRuntimeError(nullmsg)
        data = arr.data
        if not 0 <= idx < len(data):
            raise MiniCRuntimeError(
                f"index {idx} out of bounds [0,{len(data)}) (line {line})"
            )
        if vc:
            data[idx] = vv
        else:
            value = frame[vs]
            if value is _UNDEF:
                _raise_undef(vr)
            data[idx] = value
    return run


def _c_arraylen(instr: ArrayLen, slot, program) -> Callable:
    d = slot(instr.dest)
    msg = f"len(null) (line {instr.line})"
    const, v, s, r = _src(instr.arr, slot)
    if const:
        def run(state, frame):
            if v is None:
                raise MiniCRuntimeError(msg)
            frame[d] = len(v.data)
    else:
        def run(state, frame):
            arr = frame[s]
            if arr is _UNDEF:
                _raise_undef(r)
            if arr is None:
                raise MiniCRuntimeError(msg)
            frame[d] = len(arr.data)
    return run


def _c_loadglobal(instr: LoadGlobal, slot, program) -> Callable:
    d = slot(instr.dest)
    name = instr.name

    def run(state, frame):
        frame[d] = state.globals[name]
    return run


def _c_storeglobal(instr: StoreGlobal, slot, program) -> Callable:
    name = instr.name
    const, v, s, r = _src(instr.src, slot)
    if const:
        def run(state, frame):
            state.globals[name] = v
    else:
        def run(state, frame):
            a = frame[s]
            if a is _UNDEF:
                _raise_undef(r)
            state.globals[name] = a
    return run


def _c_call(instr: Call, slot, program) -> Callable:
    callee = program.functions.get(instr.func)
    if callee is None:
        raise CompileError(f"call to unknown function {instr.func!r}")
    eval_args = _make_args_eval(instr.args, slot)
    if instr.dest is not None:
        d = slot(instr.dest)

        def run(state, frame):
            frame[d] = callee.call(state, eval_args(frame))
    else:
        def run(state, frame):
            callee.call(state, eval_args(frame))
    return run


def _c_callbuiltin(instr: CallBuiltin, slot, program) -> Callable:
    fname = instr.func
    eval_args = _make_args_eval(instr.args, slot)
    if fname == "print":
        def run(state, frame):
            state.output.append(
                " ".join(format_value(a) for a in eval_args(frame))
            )
        return run
    builtin = BUILTINS.get(fname)
    if builtin is None or builtin.impl is None:
        raise CompileError(f"builtin {fname!r} has no host implementation")
    impl = builtin.impl
    if instr.dest is not None:
        d = slot(instr.dest)

        def run(state, frame):
            args = eval_args(frame)
            try:
                frame[d] = impl(*args)
            except (ValueError, OverflowError, ZeroDivisionError) as exc:
                raise MiniCRuntimeError(f"{fname}: {exc}") from None
    else:
        def run(state, frame):
            args = eval_args(frame)
            try:
                impl(*args)
            except (ValueError, OverflowError, ZeroDivisionError) as exc:
                raise MiniCRuntimeError(f"{fname}: {exc}") from None
    return run


# The five DCA intrinsic names, mirrored from repro.core.instrument
# (string literals here to keep interp free of a core dependency).
_RT_RECORD = "rt_iterator_record"
_RT_PERMUTE = "rt_iterator_permute"
_RT_NEXT = "rt_iterator_next"
_RT_GET = "rt_iterator_get"
_RT_VERIFY = "rt_verify"


def _c_intrinsic(instr: Intrinsic, slot, program) -> Callable:
    name = instr.func
    eval_args = _make_args_eval(instr.args, slot)
    nort = f"intrinsic {name!r} executed without a runtime"
    args = instr.args

    # Specialized dispatch for the DCA intrinsics: when the runtime opts
    # in (``fast_intrinsics``, i.e. its ``handle_intrinsic`` is a pure
    # name dispatch) and the label is a compile-time constant, call the
    # handler method directly — rt_iterator_get/next fire once per loop
    # iteration, so skipping the name ladder and the argument list is a
    # measurable share of replay time.  Any other runtime falls back to
    # ``handle_intrinsic`` with identical semantics.
    if args and _src(args[0], slot)[0]:
        label = _src(args[0], slot)[1]
        if name == _RT_GET and instr.dest is not None and len(args) == 2:
            idx_const, idx = _src(args[1], slot)[:2]
            if idx_const:
                d = slot(instr.dest)

                def run(state, frame):
                    rt = state.runtime
                    if rt is None:
                        raise MiniCRuntimeError(nort)
                    if rt.fast_intrinsics:
                        frame[d] = rt._get(label, idx)
                    else:
                        frame[d] = rt.handle_intrinsic(
                            state, name, eval_args(frame)
                        )
                return run
        elif name == _RT_NEXT and instr.dest is not None and len(args) == 1:
            d = slot(instr.dest)

            def run(state, frame):
                rt = state.runtime
                if rt is None:
                    raise MiniCRuntimeError(nort)
                if rt.fast_intrinsics:
                    frame[d] = rt._next(label)
                else:
                    frame[d] = rt.handle_intrinsic(state, name, eval_args(frame))
            return run
        elif name == _RT_RECORD and instr.dest is None:
            eval_vals = _make_args_eval(args[1:], slot)

            def run(state, frame):
                rt = state.runtime
                if rt is None:
                    raise MiniCRuntimeError(nort)
                if rt.fast_intrinsics:
                    rt._record(label, tuple(eval_vals(frame)))
                else:
                    rt.handle_intrinsic(state, name, eval_args(frame))
            return run
        elif name == _RT_PERMUTE and instr.dest is None and len(args) == 1:
            def run(state, frame):
                rt = state.runtime
                if rt is None:
                    raise MiniCRuntimeError(nort)
                if rt.fast_intrinsics:
                    rt._permute(label)
                else:
                    rt.handle_intrinsic(state, name, eval_args(frame))
            return run
        elif name == _RT_VERIFY and instr.dest is None:
            eval_vals = _make_args_eval(args[1:], slot)

            def run(state, frame):
                rt = state.runtime
                if rt is None:
                    raise MiniCRuntimeError(nort)
                if rt.fast_intrinsics:
                    rt._verify(state, label, eval_vals(frame))
                else:
                    rt.handle_intrinsic(state, name, eval_args(frame))
            return run

    if instr.dest is not None:
        d = slot(instr.dest)

        def run(state, frame):
            args = eval_args(frame)
            runtime = state.runtime
            if runtime is None:
                raise MiniCRuntimeError(nort)
            frame[d] = runtime.handle_intrinsic(state, name, args)
    else:
        def run(state, frame):
            args = eval_args(frame)
            runtime = state.runtime
            if runtime is None:
                raise MiniCRuntimeError(nort)
            runtime.handle_intrinsic(state, name, args)
    return run


_COMPILERS: Dict[type, Callable] = {
    Mov: _c_mov,
    BinOp: _c_binop,
    UnOp: _c_unop,
    NewStruct: _c_newstruct,
    NewArray: _c_newarray,
    GetField: _c_getfield,
    SetField: _c_setfield,
    GetIndex: _c_getindex,
    SetIndex: _c_setindex,
    ArrayLen: _c_arraylen,
    LoadGlobal: _c_loadglobal,
    StoreGlobal: _c_storeglobal,
    Call: _c_call,
    CallBuiltin: _c_callbuiltin,
    Intrinsic: _c_intrinsic,
}


def _compile_terminator(instr, slot, blocks: Dict[str, _Block]) -> Callable:
    t = type(instr)
    if t is Jump:
        target = blocks[instr.target]

        def term(state, frame):
            return target
        return term
    if t is Branch:
        tb = blocks[instr.true_target]
        fb = blocks[instr.false_target]
        const, v, s, r = _src(instr.cond, slot)
        if const:
            try:
                taken = tb if truthy(v) else fb
            except MiniCRuntimeError:
                def term(state, frame):
                    truthy(v)  # raises: constant is not a valid condition
                    return tb  # pragma: no cover - unreachable
            else:
                def term(state, frame):
                    return taken
            return term

        def term(state, frame):
            c = frame[s]
            if c is True:
                return tb
            if c is False:
                return fb
            if c is _UNDEF:
                _raise_undef(r)
            return tb if truthy(c) else fb
        return term
    if t is Ret:
        value = instr.value
        if value is None:
            def term(state, frame):
                state.retval = None
                return None
        elif type(value) is Const:
            v = value.value

            def term(state, frame):
                state.retval = v
                return None
        else:
            s = slot(value)
            r = value

            def term(state, frame):
                a = frame[s]
                if a is _UNDEF:
                    _raise_undef(r)
                state.retval = a
                return None
        return term
    # Mirror the interpreter: a malformed last instruction faults at run
    # time with the same message, without executing it.
    msg = f"bad terminator {instr}"

    def term(state, frame):  # pragma: no cover - verifier guarantees terminators
        raise MiniCRuntimeError(msg)
    return term


def _compile_function(func, program: CompiledProgram) -> Callable:
    slots: Dict[Reg, int] = {}

    def slot(reg: Reg) -> int:
        s = slots.get(reg)
        if s is None:
            s = slots[reg] = len(slots)
        return s

    param_slots = [slot(reg) for reg, _t in func.params]
    nparams = len(func.params)

    blocks: Dict[str, _Block] = {name: _Block() for name in func.block_order}
    for name in func.block_order:
        src = func.blocks[name]
        instrs = src.instrs
        if not instrs:
            raise CompileError(f"empty block {name!r} in {func.name}")
        blk = blocks[name]
        blk.n = len(instrs)
        ops = []
        for i in instrs[:-1]:
            factory = _COMPILERS.get(type(i))
            if factory is None:
                raise CompileError(f"uncompilable instruction {i}")
            ops.append(factory(i, slot, program))
        blk.ops = tuple(ops)
        blk.term = _compile_terminator(instrs[-1], slot, blocks)
    for blk in blocks.values():
        _seal_block(blk)

    entry_block = blocks[func.entry]
    nregs = len(slots)
    fname = func.name
    # Fast path: parameters landed on slots 0..n-1 in declaration order,
    # so the argument list *is* the frame prefix.
    contiguous = param_slots == list(range(nparams))
    padding = [_UNDEF] * (nregs - nparams)

    if contiguous:
        def call(state, args):
            if len(args) != nparams:
                raise MiniCRuntimeError(
                    f"{fname} expects {nparams} args, got {len(args)}"
                )
            frame = args + padding
            block = entry_block
            max_steps = state.max_steps
            while block is not None:
                steps = state.steps + block.n
                state.steps = steps
                if steps > max_steps:
                    raise MiniCRuntimeError("step limit exceeded")
                block = block.run(state, frame)
            return state.retval
    else:  # pragma: no cover - duplicate parameter registers
        def call(state, args):
            if len(args) != nparams:
                raise MiniCRuntimeError(
                    f"{fname} expects {nparams} args, got {len(args)}"
                )
            frame = [_UNDEF] * nregs
            for s, value in zip(param_slots, args):
                frame[s] = value
            block = entry_block
            max_steps = state.max_steps
            while block is not None:
                steps = state.steps + block.n
                state.steps = steps
                if steps > max_steps:
                    raise MiniCRuntimeError("step limit exceeded")
                block = block.run(state, frame)
            return state.retval
    return call


# ---------------------------------------------------------------------------
# Module compilation (cached per Module object)
# ---------------------------------------------------------------------------

#: Bounded LRU of compiled programs.  Keyed by ``id(module)`` because
#: Module is an unhashable dataclass.  Entries hold the module strongly —
#: the program references it anyway — so eviction is the only way a
#: cached module dies; the ``entry[0] is module`` check below guards
#: against ``id()`` reuse after eviction.
_MODULE_CACHE: "OrderedDict[int, Tuple[Module, CompiledProgram]]" = OrderedDict()
_MODULE_CACHE_MAX = 64


def compile_module(module: Module) -> CompiledProgram:
    """Lower ``module`` into closures, once; repeated calls are cached.

    Raises :class:`CompileError` when the module contains something the
    backend cannot lower — callers fall back to the interpreter.
    """
    key = id(module)
    entry = _MODULE_CACHE.get(key)
    if entry is not None and entry[0] is module:
        _MODULE_CACHE.move_to_end(key)
        obs.current().count("compile.module_cache.hits")
        return entry[1]
    obs.current().count("compile.module_cache.misses")

    program = CompiledProgram(module)
    for name, func in module.functions.items():
        program.functions[name] = CompiledFunction(name, len(func.params))
    try:
        for name, func in module.functions.items():
            program.functions[name].call = _compile_function(func, program)
    except CompileError:
        raise
    except Exception as exc:
        raise CompileError(f"closure compilation failed: {exc!r}") from exc

    _MODULE_CACHE[key] = (module, program)
    while len(_MODULE_CACHE) > _MODULE_CACHE_MAX:
        _MODULE_CACHE.popitem(last=False)
    return program


class CompiledExecutor:
    """One execution of a compiled program.

    API-compatible with :class:`~repro.interp.interpreter.Interpreter`
    for runtime-only runs: ``run``, ``steps``, ``globals``, ``heap``,
    ``output``/``output_text`` and the ``module`` attribute, which is all
    the DCA runtime and the schedule engine touch.
    """

    __slots__ = (
        "program",
        "module",
        "heap",
        "globals",
        "runtime",
        "max_steps",
        "steps",
        "output",
        "retval",
    )

    def __init__(
        self,
        program,
        runtime: Optional[RuntimeHooks] = None,
        max_steps: Optional[int] = None,
    ):
        if isinstance(program, Module):
            program = compile_module(program)
        self.program = program
        self.module = program.module
        self.heap = Heap()
        self.globals: Dict[str, object] = {
            name: gv.init for name, gv in self.module.globals.items()
        }
        self.runtime = runtime
        self.max_steps = max_steps or _DEFAULT_MAX_STEPS
        self.steps = 0
        self.output: List[str] = []
        self.retval: object = None

    def run(self, entry: str = "main", args: Optional[List[object]] = None) -> object:
        cf = self.program.functions.get(entry)
        if cf is None:
            raise MiniCRuntimeError(f"no function named {entry!r}")
        return cf.call(self, list(args or []))

    def output_text(self) -> str:
        if not self.output:
            return ""
        return "\n".join(self.output) + "\n"


def create_executor(
    module: Module,
    runtime: Optional[RuntimeHooks] = None,
    observers=None,
    profiler=None,
    max_steps: Optional[int] = None,
    exec_backend: Optional[str] = None,
    obs_enabled: Optional[bool] = None,
):
    """Build an executor for ``module`` honouring the fallback rules.

    The compiled and codegen backends are used only when they can be
    *exactly* faithful: no memory/loop observers, no profiler, and the
    observability context disabled (the interpreter tallies per-run
    instruction and intrinsic metrics that compiled execution does not
    reproduce).  Everything else — including a module the compiler
    rejects — gets the tree-walking interpreter.
    """
    backend = resolve_exec_backend(exec_backend)
    ctx = obs.current()
    if backend != "interp":
        if observers:
            ctx.count("exec.fallback.observers")
        elif profiler is not None:
            ctx.count("exec.fallback.profiler")
        else:
            if obs_enabled is None:
                obs_enabled = ctx.enabled
            if obs_enabled:
                ctx.count("exec.fallback.obs-enabled")
            elif backend == "codegen":
                # Imported lazily: codegen imports this module's helpers.
                from repro.interp.codegen import (
                    CodegenExecutor,
                    compile_module_codegen,
                )

                try:
                    executor = CodegenExecutor(
                        compile_module_codegen(module),
                        runtime=runtime,
                        max_steps=max_steps,
                    )
                except CompileError:
                    ctx.count("exec.fallback.compile-error")
                else:
                    ctx.count("exec.backend.codegen")
                    return executor
            else:
                try:
                    executor = CompiledExecutor(
                        compile_module(module),
                        runtime=runtime,
                        max_steps=max_steps,
                    )
                except CompileError:
                    ctx.count("exec.fallback.compile-error")
                else:
                    ctx.count("exec.backend.compiled")
                    return executor
    ctx.count("exec.backend.interp")
    return Interpreter(
        module,
        runtime=runtime,
        observers=observers,
        profiler=profiler,
        max_steps=max_steps,
    )
