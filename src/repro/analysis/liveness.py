"""Register liveness (backward data-flow) and loop live-in/live-out sets.

Liveness is the foundation of the paper's commutativity notion (§III): a
loop is commutative when permuting its iterations leaves its *live-out*
values unchanged.  ``LoopLiveness`` computes, per natural loop:

* ``live_out_scalars`` — scalar registers defined in the loop and live on
  some exit edge (these are checked value-by-value);
* ``live_out_refs`` — reference-typed registers live on some exit edge
  (roots of the heap snapshot — the loop may have mutated anything
  reachable from them);
* ``live_in_regs`` — registers live into the header that the loop uses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.loops import Loop, LoopForest
from repro.ir.function import Function
from repro.ir.instructions import Reg
from repro.lang.types import Type

__all__ = [
    "Liveness",
    "LoopLiveness",
]


class Liveness:
    """Block-level liveness for one function."""

    def __init__(self, func: Function):
        self.func = func
        self._use: Dict[str, Set[Reg]] = {}
        self._def: Dict[str, Set[Reg]] = {}
        self.live_in: Dict[str, Set[Reg]] = {}
        self.live_out: Dict[str, Set[Reg]] = {}
        self._compute()

    def _compute(self) -> None:
        func = self.func
        for block in func.ordered_blocks():
            uses: Set[Reg] = set()
            defs: Set[Reg] = set()
            for instr in block.instrs:
                for reg in instr.uses():
                    if reg not in defs:
                        uses.add(reg)
                defs.update(instr.defs())
            self._use[block.name] = uses
            self._def[block.name] = defs
            self.live_in[block.name] = set()
            self.live_out[block.name] = set()

        changed = True
        order = list(reversed(func.block_order))
        while changed:
            changed = False
            for name in order:
                block = func.blocks[name]
                out: Set[Reg] = set()
                for succ in block.successors():
                    out |= self.live_in[succ]
                newin = self._use[name] | (out - self._def[name])
                if out != self.live_out[name]:
                    self.live_out[name] = out
                    changed = True
                if newin != self.live_in[name]:
                    self.live_in[name] = newin
                    changed = True

    def live_at_entry(self, block: str) -> Set[Reg]:
        return set(self.live_in[block])

    def live_at_exit(self, block: str) -> Set[Reg]:
        return set(self.live_out[block])


class LoopLiveness:
    """Loop-scoped live-in/live-out classification used by DCA."""

    def __init__(self, func: Function, forest: LoopForest,
                 liveness: Optional[Liveness] = None):
        self.func = func
        self.forest = forest
        self.liveness = liveness or Liveness(func)

    # -- helpers ---------------------------------------------------------------

    def _reg_type(self, reg: Reg) -> Optional[Type]:
        return self.func.reg_types.get(reg)

    def _is_ref(self, reg: Reg) -> bool:
        t = self._reg_type(reg)
        return t is not None and t.is_reference()

    def defs_in_loop(self, loop: Loop) -> Set[Reg]:
        defs: Set[Reg] = set()
        for name in loop.blocks:
            for instr in self.func.blocks[name].instrs:
                defs.update(instr.defs())
        return defs

    def uses_in_loop(self, loop: Loop) -> Set[Reg]:
        uses: Set[Reg] = set()
        for name in loop.blocks:
            for instr in self.func.blocks[name].instrs:
                uses.update(instr.uses())
        return uses

    # -- live sets ------------------------------------------------------------

    def exit_live_regs(self, loop: Loop) -> Set[Reg]:
        """Registers live on at least one exit edge of the loop."""
        live: Set[Reg] = set()
        for _src, dst in loop.exit_edges(self.func):
            live |= self.liveness.live_in[dst]
        return live

    def live_out_scalars(self, loop: Loop) -> List[Reg]:
        """Scalar registers the loop defines that are consumed afterwards."""
        defs = self.defs_in_loop(loop)
        result = [
            reg
            for reg in self.exit_live_regs(loop)
            if reg in defs and not self._is_ref(reg)
        ]
        return sorted(result, key=lambda r: r.name)

    def live_out_refs(self, loop: Loop) -> List[Reg]:
        """Reference registers live after the loop (heap snapshot roots).

        Includes references defined before the loop: the loop may mutate the
        heap they point to, so their reachable state is part of the
        observable outcome.
        """
        result = [reg for reg in self.exit_live_regs(loop) if self._is_ref(reg)]
        return sorted(result, key=lambda r: r.name)

    def live_in_regs(self, loop: Loop) -> List[Reg]:
        """Registers defined outside the loop but used within it."""
        header_live = self.liveness.live_in[loop.header]
        uses = self.uses_in_loop(loop)
        defs = self.defs_in_loop(loop)
        live_in = {reg for reg in uses & header_live}
        # A register both defined in the loop and live into the header is a
        # loop-carried value (e.g. an accumulator); it is still live-in for
        # the first iteration.
        return sorted(live_in | (defs & header_live & uses),
                      key=lambda r: r.name)
