"""Dynamic (profile-guided) memory-dependence analysis.

This observer reconstructs, from one instrumented execution, the memory
data-flow the paper's infrastructure obtains from LLVM instrumentation:

* **per-loop dependence edges** between *static* instruction sites —
  read-after-write (flow), write-after-read (anti) and write-after-write
  (output) — each tagged with whether the two accesses happened in the
  same iteration and/or invocation of the loop;
* **privatization facts** — whether every iteration that touches a
  location writes it before reading it (Tournavitis et al. [8]);
* access attribution through calls: an access made inside a callee is
  attributed to the (innermost) call site inside the loop's function, so
  loops with helper calls (``push``/``pop``) still produce loop-level
  edges.

Consumers:

* :mod:`repro.core.iterator_recognition` follows same-invocation flow
  edges so that e.g. ``pop(frontier)`` feeding ``frontier->size`` joins
  the iterator slice (the "profile-guided" part of generalized iterator
  recognition);
* the dependence-profiling and DiscoPoP-style baselines decide
  parallelizability from the cross-iteration edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.loops import build_loop_forest
from repro.interp.events import Observer
from repro.ir.function import Module
from repro.ir.instructions import Instr

__all__ = [
    "DepEdge",
    "DynamicDepProfiler",
    "LoopDeps",
    "SiteRegistry",
]

#: (func_name, block_name, index)
Site = Tuple[str, str, int]

#: (label, invocation, iteration) snapshots of the loop stack.
LoopSnap = Tuple[str, int, int]


@dataclass(frozen=True)
class DepEdge:
    """A dynamic dependence between two static sites, scoped to a loop."""

    kind: str  # "raw" | "war" | "waw"
    writer: Site
    reader: Site
    same_iteration: bool
    #: The concrete location (valid within the profiled run only); lets
    #: baseline detectors consult privatization facts per edge.
    loc: Tuple = ()


class SiteRegistry:
    """Maps instruction identity to static location and loop membership."""

    def __init__(self, module: Module):
        self.module = module
        self.site_of: Dict[int, Site] = {}
        #: id(instr) -> loop labels containing the instruction.
        self.loops_of: Dict[int, Tuple[str, ...]] = {}
        for func in module.functions.values():
            forest = build_loop_forest(func)
            for block in func.ordered_blocks():
                chain = tuple(l.label for l in forest.loop_chain(block.name))
                for idx, instr in enumerate(block.instrs):
                    self.site_of[id(instr)] = (func.name, block.name, idx)
                    self.loops_of[id(instr)] = chain

    def innermost_site_in_loop(
        self, chain: Tuple[int, ...], label: str
    ) -> Optional[Site]:
        """Deepest element of an attribution chain lying inside ``label``.

        Memoized: the same static chains recur once per iteration, so
        the scan runs once per distinct ``(chain, label)`` pair.
        """
        key = (chain, label)
        try:
            return self._innermost_cache[key]
        except KeyError:
            pass
        except AttributeError:
            self._innermost_cache = {}
        site = None
        for instr_id in reversed(chain):
            if label in self.loops_of.get(instr_id, ()):
                site = self.site_of[instr_id]
                break
        self._innermost_cache[key] = site
        return site


@dataclass
class _Access:
    chain: Tuple[int, ...]
    loops: Tuple[LoopSnap, ...]


@dataclass
class _PrivState:
    """Per-(loop,location) privatization tracking."""

    invocation: int = -1
    iteration: int = -1
    first_is_write: bool = True
    always_written_first: bool = True
    iterations_touched: int = 0


@dataclass
class LoopDeps:
    """Aggregated dependence facts for one loop label."""

    label: str
    edges: Set[DepEdge] = field(default_factory=set)
    #: Locations with a cross-iteration access of any kind.
    shared_locations: int = 0

    def cross_iteration_edges(self, kind: Optional[str] = None) -> List[DepEdge]:
        return [
            e
            for e in self.edges
            if not e.same_iteration and (kind is None or e.kind == kind)
        ]

    def flow_edges_same_invocation(self) -> Set[Tuple[Site, Site]]:
        """(writer, reader) flow pairs — iterator-recognition input."""
        return {(e.writer, e.reader) for e in self.edges if e.kind == "raw"}


class DynamicDepProfiler(Observer):
    """Observer building :class:`LoopDeps` for every loop executed."""

    wants_memory = True
    wants_loops = True

    #: Cap on remembered reads per location between writes.
    _MAX_READS = 6

    def __init__(self, module: Module, registry: Optional[SiteRegistry] = None):
        self.registry = registry or SiteRegistry(module)
        self.loop_deps: Dict[str, LoopDeps] = {}
        self._last_write: Dict[Tuple, _Access] = {}
        self._reads: Dict[Tuple, List[_Access]] = {}
        self._priv: Dict[Tuple[str, Tuple], _PrivState] = {}
        #: Labels of loops that were entered at least once.
        self.executed: set = set()
        #: Highest trip count observed per loop label (across invocations).
        self.max_trips: Dict[str, int] = {}
        self.interp = None  # set by attach()
        #: Incremental mirror of the interpreter's loop stack, rebuilt on
        #: loop events (rare) so per-access snapshots (hot) reuse it.
        self._lstack: List[Tuple[str, int, int]] = []
        self._loops_snap: Tuple[Tuple[str, int, int], ...] = ()
        #: Call-chain prefix cached against interp.call_stack_version.
        self._chain_base: Tuple[int, ...] = ()
        self._chain_version = -1

    def on_loop_enter(self, label: str, invocation: int) -> None:
        self.executed.add(label)
        self.max_trips.setdefault(label, 0)
        self._lstack.append((label, invocation, 0))
        self._loops_snap = tuple(self._lstack)

    def on_loop_iteration(self, label: str, invocation: int, iteration: int) -> None:
        if iteration > self.max_trips.get(label, 0):
            self.max_trips[label] = iteration
        self._lstack[-1] = (label, invocation, iteration)
        self._loops_snap = tuple(self._lstack)

    def on_loop_exit(self, label: str, invocation: int) -> None:
        if self._lstack:
            self._lstack.pop()
        self._loops_snap = tuple(self._lstack)

    # -- event handlers ---------------------------------------------------------

    def _snapshot(self, instr: Instr) -> _Access:
        interp = self.interp
        version = interp.call_stack_version
        if version != self._chain_version:
            self._chain_base = tuple([id(c) for c in interp.call_stack])
            self._chain_version = version
        return _Access(
            chain=self._chain_base + (id(instr),), loops=self._loops_snap
        )

    def on_read(self, loc, instr) -> None:
        access = self._snapshot(instr)
        write = self._last_write.get(loc)
        if write is not None:
            self._emit_edges("raw", loc, write, access)
        reads = self._reads.setdefault(loc, [])
        if len(reads) < self._MAX_READS:
            reads.append(access)
        else:
            reads[-1] = access
        self._update_priv(loc, access, is_write=False)

    def on_write(self, loc, instr) -> None:
        access = self._snapshot(instr)
        prev_write = self._last_write.get(loc)
        if prev_write is not None:
            self._emit_edges("waw", loc, prev_write, access)
        for read in self._reads.get(loc, ()):  # anti dependences
            self._emit_edges("war", loc, read, access)
        self._reads[loc] = []
        self._last_write[loc] = access
        self._update_priv(loc, access, is_write=True)

    # -- bookkeeping -----------------------------------------------------------

    def _emit_edges(self, kind: str, loc, first: _Access, second: _Access) -> None:
        """Record an edge for every loop containing both accesses."""
        second_ctx = {snap[0]: snap for snap in second.loops}
        for label, invocation, iteration in first.loops:
            other = second_ctx.get(label)
            if other is None or other[1] != invocation:
                continue  # different invocation (or loop not active)
            w_site = self.registry.innermost_site_in_loop(first.chain, label)
            r_site = self.registry.innermost_site_in_loop(second.chain, label)
            if w_site is None or r_site is None:
                continue
            deps = self.loop_deps.setdefault(label, LoopDeps(label))
            deps.edges.add(
                DepEdge(
                    kind=kind,
                    writer=w_site,
                    reader=r_site,
                    same_iteration=(other[2] == iteration),
                    loc=loc,
                )
            )

    def _update_priv(self, loc, access: _Access, is_write: bool) -> None:
        for label, invocation, iteration in access.loops:
            key = (label, loc)
            state = self._priv.get(key)
            if state is None:
                state = _PrivState()
                self._priv[key] = state
            if state.invocation != invocation or state.iteration != iteration:
                state.invocation = invocation
                state.iteration = iteration
                state.iterations_touched += 1
                state.first_is_write = is_write
                if not is_write:
                    state.always_written_first = False

    # -- results ---------------------------------------------------------------

    def deps_for(self, label: str) -> LoopDeps:
        return self.loop_deps.get(label, LoopDeps(label))

    def is_privatizable(self, label: str, loc) -> bool:
        """Every iteration of ``label`` touching ``loc`` wrote it first."""
        state = self._priv.get((label, loc))
        if state is None:
            return True
        return state.always_written_first

    def memory_flow_edges(self) -> Dict[str, Set[Tuple[Site, Site]]]:
        """Same-invocation flow edges per loop, for iterator recognition."""
        return {
            label: deps.flow_edges_same_invocation()
            for label, deps in self.loop_deps.items()
        }
