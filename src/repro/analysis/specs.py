"""Commutativity specs: declared-commutative operations and their checks.

The dynamic verifier compares live-out snapshots byte-for-byte, so a loop
that prepends to a linked container is judged non-commutative even when
nothing in the program ever observes the chain's order (PLDS ``otter``,
``hash``).  CPF solves the analogous problem for C with
``CommutativeLibsAA`` — a curated list of library operations (``malloc``,
``rand``, set/hash inserts) declared commutative — and Koskinen & Bansal
ground the semantics: two operations commute when the resulting states
are equal *under an abstraction*, not bitwise.

This module is that layer for MiniC.  It has three parts:

1. **The registry** (:class:`SpecRegistry` / :func:`default_registry`):
   declarative :class:`CommutativitySpec` records for the idioms MiniC
   programs inline where C would call a library — order-insensitive
   container inserts (keyed by exact struct signature, the analogue of
   matching a library symbol), commutative-monoid accumulators,
   fresh allocation, and self-composing PRNG state steps.  Each spec
   names its effect footprint and the equivalence class under which the
   operation commutes.

2. **The chain-insert recognizer** (:func:`recognize_chain_inserts`):
   a syntactic/points-to match for the prepend idiom ``n = new T;
   n.f = ...; n.link = head; head = n`` against a declared container
   type.  The static prover waives the matched instruction sites (they
   are exactly the declared footprint) and the lint pass reuses the
   recognizer with a widened registry to suggest declarations.

3. **The annotation checker** (:func:`check_annotations`): user functions
   may be declared ``commutative func ...``; the declaration is *checked*,
   never trusted.  A bottom-up interprocedural effect-summary pass —
   composing :class:`repro.analysis.purity.EffectAnalysis` (whose
   fixpoint already handles direct and mutual recursion) with
   :class:`repro.analysis.alias.PointsTo` freshness — verifies the body
   stays within one of the spec shapes (pure / fresh-alloc constructor /
   monoid accumulator / PRNG step).  An unsound declaration is a
   ``repro lint`` error.

Soundness contract (DESIGN.md §12): with specs enabled the verifier's
equality is "equal after canonicalizing declared containers to suffix
multisets" (:func:`repro.core.liveout.canonicalize_snapshot`); everything
not covered by a spec is still compared byte-exactly, so specs can only
ever relax comparisons of state the program declared order-free.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import repro.obs as obs
from repro.analysis.alias import PointsTo
from repro.analysis.purity import EffectAnalysis
from repro.ir.function import Function, Module
from repro.ir.instructions import (
    BinOp,
    Call,
    CallBuiltin,
    GetField,
    LoadGlobal,
    Mov,
    NewArray,
    NewStruct,
    Reg,
    SetField,
    SetIndex,
    StoreGlobal,
)
from repro.lang.types import IntType

__all__ = [
    "AnnotationReport",
    "ChainInsert",
    "CommutativitySpec",
    "EQ_EXACT",
    "EQ_IGNORE",
    "EQ_MULTISET",
    "EQ_REDUCTION",
    "SpecRegistry",
    "check_annotations",
    "default_registry",
    "recognize_chain_inserts",
    "registry_from_env",
    "specs_env_enabled",
]

#: Equivalence classes for snapshot comparison (Koskinen & Bansal's
#: abstraction): under which notion of "equal state" the operation
#: commutes.
EQ_EXACT = "exact"  # byte-equal after canonical renumbering (alloc, PRNG)
EQ_MULTISET = "multiset"  # container contents as a bag, order erased
EQ_REDUCTION = "reduction"  # only the folded value is observable
EQ_IGNORE = "ignore"  # effect invisible to live-out comparison


@dataclass(frozen=True)
class CommutativitySpec:
    """One declared-commutative operation.

    ``kind`` selects the shape:

    * ``chain-insert`` — prepend to a singly linked container whose node
      type matches ``struct``/``fields`` exactly and links through
      ``link_field``.  Equivalence: the chain denotes the multiset of
      its node contents.
    * ``monoid`` — accumulate into one integer global with a commutative
      associative operator (``op``); only the folded value is observable.
    * ``fresh-alloc`` — allocate and initialize memory unreachable before
      the call; commutes because snapshots canonicalize object identity.
    * ``prng`` — step a generator state global by a function of itself
      only; N steps compose to the same state in any order.
    """

    name: str
    kind: str
    equivalence: str
    #: Human description of the effect footprint (shown by lint/docs).
    footprint: str
    struct: Optional[str] = None
    link_field: Optional[str] = None
    #: Full ordered (field name, type string) signature; the spec applies
    #: only to a struct matching it exactly — the MiniC analogue of
    #: matching a known library symbol, which is what keeps declared
    #: canonicalization from ever touching undeclared types.
    fields: Tuple[Tuple[str, str], ...] = ()
    op: Optional[str] = None

    def describe(self) -> Dict[str, object]:
        """Canonical JSON row (digest input and ``lint --json`` output)."""
        row: Dict[str, object] = {
            "name": self.name,
            "kind": self.kind,
            "equivalence": self.equivalence,
            "footprint": self.footprint,
        }
        if self.struct is not None:
            row["struct"] = self.struct
            row["link_field"] = self.link_field
            row["fields"] = [list(f) for f in self.fields]
        if self.op is not None:
            row["op"] = self.op
        return row


class SpecRegistry:
    """An immutable set of :class:`CommutativitySpec` records."""

    def __init__(self, specs: Tuple[CommutativitySpec, ...]):
        self.specs = tuple(specs)
        self._chain_by_struct = {
            s.struct: s for s in self.specs if s.kind == "chain-insert"
        }

    def __iter__(self):
        return iter(self.specs)

    def chain_spec(self, struct: str) -> Optional[CommutativitySpec]:
        return self._chain_by_struct.get(struct)

    def chain_slots(self, module: Module) -> Dict[str, int]:
        """Link-field slot index per declared struct *present in module*.

        A struct participates only when its full ordered field signature
        matches the spec — name collisions with unrelated types never
        activate a spec.  Slot indices match the field order of
        :func:`repro.core.liveout.capture` rows.
        """
        slots: Dict[str, int] = {}
        for name, spec in self._chain_by_struct.items():
            sdef = module.structs.get(name)
            if sdef is None:
                continue
            signature = tuple(
                (fname, str(ftype)) for fname, ftype in sdef.fields.items()
            )
            if signature != spec.fields:
                continue
            slots[name] = list(sdef.fields).index(spec.link_field)
        if slots:
            obs.current().count("specs.chains_active", len(slots))
        return slots

    def extended_with_module_chains(self, module: Module) -> "SpecRegistry":
        """A widened registry declaring every self-linked struct in
        ``module`` (used by lint to compute "would be commutative if
        declared" suggestions, never by the analysis proper)."""
        extra: List[CommutativitySpec] = []
        for name, sdef in module.structs.items():
            if name in self._chain_by_struct:
                continue
            links = [
                fname
                for fname, ftype in sdef.fields.items()
                if str(ftype) == f"{name}*"
            ]
            if len(links) != 1:
                continue
            extra.append(
                chain_insert_spec(
                    name,
                    links[0],
                    tuple((f, str(t)) for f, t in sdef.fields.items()),
                )
            )
        if not extra:
            return self
        return SpecRegistry(self.specs + tuple(extra))

    def digest(self) -> str:
        """Stable content hash of the spec set (cache-key component)."""
        payload = json.dumps(
            [s.describe() for s in sorted(self.specs, key=lambda s: s.name)],
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()


def chain_insert_spec(
    struct: str, link_field: str, fields: Tuple[Tuple[str, str], ...]
) -> CommutativitySpec:
    return CommutativitySpec(
        name=f"chain-insert:{struct}",
        kind="chain-insert",
        equivalence=EQ_MULTISET,
        footprint=(
            f"allocates one {struct}, writes its fields, links it through "
            f".{link_field} and publishes the new head"
        ),
        struct=struct,
        link_field=link_field,
        fields=fields,
    )


def default_registry() -> SpecRegistry:
    """The built-in spec set — the CommutativeLibsAA analogue.

    Chain-insert entries name the container node types our benchmark
    suite inlines where the original C called set/hash library routines
    (otter's clause/child lists, hash's bucket and probe chains) plus the
    generic ``BagNode``/``SetNode`` types used by examples and the fuzz
    generator.  Signatures are exact, so e.g. a user struct that happens
    to be called ``Entry`` with different fields is untouched.
    """
    specs: List[CommutativitySpec] = [
        chain_insert_spec(
            "BagNode", "next", (("value", "int"), ("next", "BagNode*"))
        ),
        chain_insert_spec(
            "SetNode", "next", (("key", "int"), ("next", "SetNode*"))
        ),
        # otter: clause list and per-clause child list.
        chain_insert_spec(
            "Child",
            "next",
            (("weight", "int"), ("id", "int"), ("next", "Child*")),
        ),
        chain_insert_spec(
            "Clause",
            "next",
            (("children", "Child*"), ("tag", "int"), ("next", "Clause*")),
        ),
        # hash: bucket chains and the probe request list.
        chain_insert_spec(
            "Entry",
            "next",
            (("key", "int"), ("value", "int"), ("next", "Entry*")),
        ),
        chain_insert_spec(
            "Probe",
            "next",
            (("key", "int"), ("result", "int"), ("next", "Probe*")),
        ),
        CommutativitySpec(
            name="monoid:int-add",
            kind="monoid",
            equivalence=EQ_REDUCTION,
            footprint="reads and writes one int global as g = g + e",
            op="+",
        ),
        CommutativitySpec(
            name="monoid:int-mul",
            kind="monoid",
            equivalence=EQ_REDUCTION,
            footprint="reads and writes one int global as g = g * e",
            op="*",
        ),
        CommutativitySpec(
            name="monoid:int-min",
            kind="monoid",
            equivalence=EQ_REDUCTION,
            footprint="reads and writes one int global as g = min(g, e)",
            op="min",
        ),
        CommutativitySpec(
            name="monoid:int-max",
            kind="monoid",
            equivalence=EQ_REDUCTION,
            footprint="reads and writes one int global as g = max(g, e)",
            op="max",
        ),
        CommutativitySpec(
            name="fresh-alloc",
            kind="fresh-alloc",
            equivalence=EQ_EXACT,
            footprint="allocates and writes only memory unreachable "
            "before the call",
        ),
        CommutativitySpec(
            name="prng-step",
            kind="prng",
            equivalence=EQ_EXACT,
            footprint="replaces one int global with a function of itself "
            "and constants only",
        ),
    ]
    return SpecRegistry(tuple(specs))


def specs_env_enabled() -> Optional[bool]:
    """Tri-state REPRO_SPECS: None (unset), False, or True."""
    raw = os.environ.get("REPRO_SPECS")
    if raw is None:
        return None
    return raw.strip().lower() not in ("", "0", "false", "no", "off")


def registry_from_env() -> Optional[SpecRegistry]:
    """The default registry iff REPRO_SPECS enables specs, else None."""
    return default_registry() if specs_env_enabled() else None


# -- chain-insert recognizer ---------------------------------------------------


@dataclass(frozen=True)
class ChainInsert:
    """One recognized prepend into a declared container.

    ``sites`` are the (block, index) instruction sites that *are* the
    declared footprint — the allocation, the field initializations, the
    link store and the head publication — which the static prover may
    waive.  ``head_reg``/``head_global`` name the published head.
    """

    struct: str
    node_reg: Reg
    sites: FrozenSet[Tuple[str, int]]
    head_reg: Optional[Reg] = None
    head_global: Optional[str] = None


def _loop_instrs(func: Function, loop) -> List[Tuple[str, int, object]]:
    out = []
    for name in sorted(loop.blocks):
        for idx, instr in enumerate(func.blocks[name].instrs):
            out.append((name, idx, instr))
    return out


def recognize_chain_inserts(
    func: Function, loop, registry: SpecRegistry, module: Module
) -> List[ChainInsert]:
    """Match declared chain-prepend idioms inside ``loop``.

    For each ``new T`` of a declared container type the match requires:

    * every in-loop use of the fresh node is a field write on it, a read
      of its own fields, or the single head publication;
    * exactly one field write stores to the link field, and its value is
      the current head (the register later republished, or the value of
      the loop's only load of the published global);
    * the head itself is otherwise unobserved inside the loop — no other
      read can see the chain mid-construction, so iteration order can
      only permute the chain's node order, which the declared
      equivalence (multiset of contents) erases.

    The recognizer is deliberately conservative: a pattern it rejects is
    simply not waived and the loop stays with the dynamic stage.
    """
    chain_slots = registry.chain_slots(module)
    if not chain_slots:
        return []
    instrs = _loop_instrs(func, loop)
    inserts: List[ChainInsert] = []

    for alloc_name, alloc_idx, alloc in instrs:
        if not isinstance(alloc, NewStruct):
            continue
        spec = registry.chain_spec(alloc.struct_name)
        if spec is None or alloc.struct_name not in chain_slots:
            continue
        node = alloc.dest
        sites: Set[Tuple[str, int]] = {(alloc_name, alloc_idx)}
        link_stores: List[Tuple[Tuple[str, int], object]] = []
        head_updates: List[Tuple[Tuple[str, int], object]] = []
        ok = True
        for name, idx, instr in instrs:
            if (name, idx) == (alloc_name, alloc_idx):
                continue
            if node in instr.defs():
                ok = False  # the node register is reassigned in-loop
                break
            if node not in instr.uses():
                continue
            if isinstance(instr, SetField) and instr.obj == node:
                sites.add((name, idx))
                if instr.field == spec.link_field:
                    link_stores.append(((name, idx), instr.value))
            elif isinstance(instr, GetField) and instr.obj == node:
                pass  # reading back the node's own fresh fields is fine
            elif isinstance(instr, Mov) and instr.src == node:
                head_updates.append(((name, idx), instr))
            elif isinstance(instr, StoreGlobal) and instr.src == node:
                head_updates.append(((name, idx), instr))
            else:
                ok = False  # the fresh node escapes some other way
                break
        if not ok or len(link_stores) != 1 or len(head_updates) != 1:
            continue
        link_value = link_stores[0][1]
        update_site, update = head_updates[0]
        sites.add(update_site)

        if isinstance(update, Mov):
            head = update.dest
            if link_value != head:
                continue
            if not _head_reg_unobserved(instrs, head, link_stores[0][0],
                                        update_site):
                continue
            inserts.append(
                ChainInsert(
                    struct=alloc.struct_name,
                    node_reg=node,
                    sites=frozenset(sites),
                    head_reg=head,
                )
            )
        else:  # StoreGlobal
            gname = update.name
            load_sites = [
                ((name, idx), instr)
                for name, idx, instr in instrs
                if isinstance(instr, LoadGlobal) and instr.name == gname
            ]
            other_stores = [
                (name, idx)
                for name, idx, instr in instrs
                if isinstance(instr, StoreGlobal)
                and instr.name == gname
                and (name, idx) != update_site
            ]
            if len(load_sites) != 1 or other_stores:
                continue
            load_site, load = load_sites[0]
            if link_value != load.dest:
                continue
            if not _head_reg_unobserved(instrs, load.dest,
                                        link_stores[0][0], load_site):
                continue
            sites.add(load_site)
            inserts.append(
                ChainInsert(
                    struct=alloc.struct_name,
                    node_reg=node,
                    sites=frozenset(sites),
                    head_global=gname,
                )
            )
    if inserts:
        obs.current().count("specs.chain_inserts_recognized", len(inserts))
    return inserts


def _head_reg_unobserved(
    instrs,
    head: Reg,
    link_site: Tuple[str, int],
    def_site: Tuple[str, int],
) -> bool:
    """The head register is used only by the link store and defined only
    at the publication/load site — nothing else in the loop can observe
    the chain's mid-construction order."""
    for name, idx, instr in instrs:
        if (name, idx) == def_site:
            continue
        if head in instr.defs():
            return False
        if head in instr.uses() and (name, idx) != link_site:
            return False
    return True


# -- commutative-annotation checker ---------------------------------------------


@dataclass(frozen=True)
class AnnotationReport:
    """Verdict of the effect-summary check for one declared function."""

    function: str
    ok: bool
    #: Validated spec kind ("pure" | "fresh-alloc" | "monoid" | "prng")
    #: when sound, else None.
    kind: Optional[str]
    reason: str
    #: State global for monoid/prng kinds (consumers must check the loop
    #: does not observe it elsewhere).
    state_global: Optional[str] = None


def _callee_closure(module: Module, root: str) -> Set[str]:
    """Transitive callees of ``root`` (including itself); cycles fine."""
    seen: Set[str] = set()
    work = [root]
    while work:
        name = work.pop()
        if name in seen:
            continue
        seen.add(name)
        func = module.functions.get(name)
        if func is None:
            continue
        for instr in func.instructions():
            if isinstance(instr, Call) and instr.func not in seen:
                work.append(instr.func)
    return seen


def _derives_only_from(
    func: Function, reg: Reg, allowed_global: str
) -> bool:
    """Every def of ``reg`` computes from the allowed global and
    constants only (transitively) — the PRNG self-composition shape."""
    visiting: Set[Reg] = set()

    def check_reg(r: Reg) -> bool:
        if r in visiting:
            return False  # conservative on cycles through registers
        visiting.add(r)
        try:
            defs = [i for i in func.instructions() if r in i.defs()]
            if not defs:
                return False  # a parameter or undefined: not constant
            for instr in defs:
                if isinstance(instr, LoadGlobal):
                    if instr.name != allowed_global:
                        return False
                    continue
                if isinstance(instr, (Mov, BinOp)) or (
                    isinstance(instr, CallBuiltin)
                    and instr.func in ("min", "max", "abs")
                ):
                    for used in instr.uses():
                        if isinstance(used, Reg) and not check_reg(used):
                            return False
                    continue
                return False
            return True
        finally:
            visiting.discard(r)

    return check_reg(reg)


def _monoid_store_ok(func: Function, store: StoreGlobal) -> Optional[str]:
    """Whether one ``StoreGlobal`` matches ``g = g op e`` for a
    commutative monoid op; returns the op on success."""
    if not isinstance(store.src, Reg):
        return None
    g_regs = {
        i.dest
        for i in func.instructions()
        if isinstance(i, LoadGlobal) and i.name == store.name
    }
    defs = [i for i in func.instructions() if store.src in i.defs()]
    if len(defs) != 1:
        return None
    d = defs[0]
    if isinstance(d, BinOp) and d.op in ("+", "*"):
        operands = [d.lhs, d.rhs]
        if any(isinstance(o, Reg) and o in g_regs for o in operands):
            return d.op
    if isinstance(d, CallBuiltin) and d.func in ("min", "max"):
        if any(isinstance(a, Reg) and a in g_regs for a in d.args):
            return d.func
    return None


def check_annotations(
    module: Module,
    registry: Optional[SpecRegistry] = None,
    effects: Optional[EffectAnalysis] = None,
    points_to: Optional[PointsTo] = None,
) -> Dict[str, AnnotationReport]:
    """Check every ``commutative``-declared function against the specs.

    Bottom-up over the call graph: the interprocedural effect summaries
    (:class:`EffectAnalysis`, a fixpoint — so direct and mutual recursion
    and calls through conditionals are already folded in) bound what the
    function *may* do; the points-to analysis establishes freshness of
    heap writes.  The declaration is validated against the spec shapes in
    order of strength: pure, fresh-alloc constructor, monoid accumulator,
    PRNG step.  Anything outside those footprints is reported unsound.
    """
    registry = registry or default_registry()
    effects = effects or EffectAnalysis(module)
    points_to = points_to or PointsTo(module)
    declared = [f for f in module.functions.values() if f.commutative]
    if not declared:
        return {}

    # Map every allocation site to its owning function, so constructor
    # freshness can allow allocations made anywhere in the call subtree.
    alloc_owner: Dict[Tuple[str, int], str] = {}
    for func in module.functions.values():
        for instr in func.instructions():
            if isinstance(instr, (NewStruct, NewArray)):
                alloc_owner[("alloc", id(instr))] = func.name

    reports: Dict[str, AnnotationReport] = {}
    ctx = obs.current()
    for func in declared:
        report = _check_one(module, func, effects, points_to, alloc_owner)
        reports[func.name] = report
        ctx.count(
            "specs.annotations.sound" if report.ok
            else "specs.annotations.unsound"
        )
    return reports


def _check_one(
    module: Module,
    func: Function,
    effects: EffectAnalysis,
    points_to: PointsTo,
    alloc_owner: Dict[Tuple[str, int], str],
) -> AnnotationReport:
    name = func.name
    eff = effects.of(name)

    def unsound(reason: str) -> AnnotationReport:
        return AnnotationReport(function=name, ok=False, kind=None,
                                reason=reason)

    if eff.does_io:
        return unsound("performs I/O; output order observes iteration order")

    if not (eff.writes_heap or eff.globals_written or eff.allocates):
        return AnnotationReport(
            function=name,
            ok=True,
            kind="pure",
            reason="no writes, no I/O: calls commute trivially",
        )

    if eff.globals_written:
        if eff.writes_heap or eff.allocates:
            return unsound(
                "writes globals and the heap; no spec covers the "
                "combined footprint"
            )
        if len(eff.globals_written) != 1:
            written = ", ".join(sorted(eff.globals_written))
            return unsound(
                f"writes multiple globals ({written}); monoid/prng specs "
                "cover exactly one state global"
            )
        gname = next(iter(eff.globals_written))
        gvar = module.globals.get(gname)
        if gvar is None or not isinstance(gvar.type, IntType):
            return unsound(
                f"global @{gname} is not an int; only integer "
                "accumulators are exactly reassociable"
            )
        # All writes must be in this function's own body: a callee
        # writing the state global would hide part of the update shape.
        for callee in _callee_closure(module, name) - {name}:
            ceff = effects.effects.get(callee)
            if ceff is None or ceff.globals_written:
                return unsound(
                    f"callee {callee} writes globals; the update shape "
                    "must be local to the declared function"
                )
        stores = [
            i
            for i in func.instructions()
            if isinstance(i, StoreGlobal) and i.name == gname
        ]
        ops = {_monoid_store_ok(func, s) for s in stores}
        if None not in ops:
            op = ", ".join(sorted(ops))
            return AnnotationReport(
                function=name,
                ok=True,
                kind="monoid",
                reason=f"accumulates @{gname} with commutative op {op}",
                state_global=gname,
            )
        if all(
            isinstance(s.src, Reg)
            and _derives_only_from(func, s.src, gname)
            for s in stores
        ):
            return AnnotationReport(
                function=name,
                ok=True,
                kind="prng",
                reason=f"steps @{gname} by a function of itself only; "
                "n steps compose identically in any order",
                state_global=gname,
            )
        return unsound(
            f"update of @{gname} is neither a commutative-monoid "
            "accumulation nor a self-composing generator step"
        )

    # Heap writes / allocation without global writes: constructor shape.
    closure = _callee_closure(module, name)
    for callee in sorted(closure):
        cfunc = module.functions.get(callee)
        if cfunc is None:
            return unsound(f"calls unknown function {callee}")
        ceff = effects.of(callee)
        if ceff.does_io or ceff.globals_written:
            return unsound(
                f"callee {callee} performs I/O or writes globals"
            )
        for instr in cfunc.instructions():
            target = None
            if isinstance(instr, SetField):
                target = instr.obj
            elif isinstance(instr, SetIndex):
                target = instr.arr
            if target is None:
                continue
            if not isinstance(target, Reg):
                return unsound(
                    f"{callee} writes through a non-register reference"
                )
            pts = points_to.points_to(callee, target)
            if not pts:
                return unsound(
                    f"{callee} writes through a reference with unknown "
                    "points-to set"
                )
            stale = [
                obj for obj in pts if alloc_owner.get(obj) not in closure
            ]
            if stale:
                return unsound(
                    f"{callee} may write memory allocated outside the "
                    "call (not fresh)"
                )
    return AnnotationReport(
        function=name,
        ok=True,
        kind="fresh-alloc",
        reason="writes only memory allocated during the call "
        "(fresh-allocation constructor)",
    )
