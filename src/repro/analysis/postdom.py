"""Postdominators and control dependence.

Computed on the reverse CFG with a virtual exit node joining every
``Ret``-terminated block (and, defensively, blocks with no successors).

Control dependence follows Ferrante-Ottenstein-Warren: block ``X`` is
control dependent on edge ``(Y, Z)`` iff ``X`` postdominates ``Z`` but does
not postdominate ``Y``.  The generalized iterator recognition uses this to
pull loop-internal branch conditions into the iterator slice when the
iterator's own instructions execute conditionally.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir.function import Function

__all__ = [
    "ControlDependence",
    "PostDominators",
]

_VIRTUAL_EXIT = "$exit"


class PostDominators:
    """Immediate postdominators for every block of a function."""

    def __init__(self, func: Function):
        self.func = func
        self.ipostdom: Dict[str, Optional[str]] = {}
        self._compute()

    def _compute(self) -> None:
        func = self.func
        succs: Dict[str, List[str]] = {}
        preds: Dict[str, List[str]] = {_VIRTUAL_EXIT: []}
        for block in func.ordered_blocks():
            ss = block.successors()
            if not ss:
                ss = [_VIRTUAL_EXIT]
            succs[block.name] = ss
        succs[_VIRTUAL_EXIT] = []
        for name, ss in succs.items():
            for s in ss:
                preds.setdefault(s, []).append(name)
        for name in succs:
            preds.setdefault(name, [])

        # Reverse-postorder of the *reverse* CFG starting from the exit.
        visited: Set[str] = set()
        postorder: List[str] = []

        def dfs(start: str) -> None:
            stack: List[Tuple[str, object]] = [(start, iter(preds[start]))]
            visited.add(start)
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if nxt not in visited:
                        visited.add(nxt)
                        stack.append((nxt, iter(preds[nxt])))
                        advanced = True
                        break
                if not advanced:
                    postorder.append(node)
                    stack.pop()

        dfs(_VIRTUAL_EXIT)
        rpo = list(reversed(postorder))
        index = {name: i for i, name in enumerate(rpo)}

        ipdom: Dict[str, Optional[str]] = {_VIRTUAL_EXIT: _VIRTUAL_EXIT}

        def intersect(a: str, b: str) -> str:
            while a != b:
                while index[a] > index[b]:
                    a = ipdom[a]  # type: ignore[assignment]
                while index[b] > index[a]:
                    b = ipdom[b]  # type: ignore[assignment]
            return a

        changed = True
        while changed:
            changed = False
            for name in rpo:
                if name == _VIRTUAL_EXIT:
                    continue
                candidates = [
                    s for s in succs.get(name, []) if s in ipdom and s in index
                ]
                if not candidates:
                    continue
                new = candidates[0]
                for s in candidates[1:]:
                    new = intersect(new, s)
                if ipdom.get(name) != new:
                    ipdom[name] = new
                    changed = True

        self.ipostdom = {
            name: (None if ipdom.get(name) in (None, _VIRTUAL_EXIT) else ipdom[name])
            for name in func.block_order
            if name in index
        }
        # Blocks not reaching the exit (infinite loops) keep no postdominator.
        for name in func.block_order:
            self.ipostdom.setdefault(name, None)

    def postdominates(self, a: str, b: str) -> bool:
        """Whether ``a`` postdominates ``b`` (reflexive)."""
        node: Optional[str] = b
        seen: Set[str] = set()
        while node is not None and node not in seen:
            if node == a:
                return True
            seen.add(node)
            node = self.ipostdom.get(node)
        return False


class ControlDependence:
    """Block-level control-dependence relation."""

    def __init__(self, func: Function):
        self.func = func
        self.postdom = PostDominators(func)
        #: block -> set of blocks whose terminator it is control dependent on
        self.deps: Dict[str, Set[str]] = {n: set() for n in func.block_order}
        self._compute()

    def _compute(self) -> None:
        func = self.func
        pd = self.postdom
        for block in func.ordered_blocks():
            succs = block.successors()
            if len(succs) < 2:
                continue
            for succ in succs:
                # Walk up the postdominator tree from succ until reaching
                # block's immediate postdominator; everything on the way is
                # control dependent on (block -> succ).
                runner: Optional[str] = succ
                stop = pd.ipostdom.get(block.name)
                seen: Set[str] = set()
                while (
                    runner is not None
                    and runner != stop
                    and runner not in seen
                ):
                    seen.add(runner)
                    self.deps[runner].add(block.name)
                    runner = pd.ipostdom.get(runner)

    def controlling_blocks(self, name: str) -> Set[str]:
        return set(self.deps.get(name, set()))
