"""Static commutativity prover and loop-carried race detector.

DCA (the dynamic stage) decides commutativity by *executing* permutation
schedules.  Many loops do not need that: their verdict follows from the
IR alone.  This pass classifies every source loop as

* ``PROVEN_COMMUTATIVE`` — permuting payload executions provably cannot
  change any live-out value.  Established by showing (a) every
  loop-carried scalar is an induction variable, an iterator-resident
  pointer chase, or an exactly-reassociable reduction; (b) every other
  live-out scalar takes an order-insensitive final value; and (c) all
  heap effects are affine array accesses with no cross-iteration
  conflict (recognized integer histograms are tolerated — integer
  ``+``/``*`` commute even on colliding locations).
* ``PROVEN_NONCOMMUTATIVE`` — a loop-carried race on observable state is
  certain: ordered I/O inside the loop, or a live-out scalar that every
  iteration overwrites with provably distinct values (an output race —
  the final value is whichever iteration ran last).
* ``UNKNOWN`` — neither proof goes through (unresolved aliasing,
  pointer-chased heap writes, floating-point reductions whose
  reassociation error is workload-dependent, ...).  These loops are
  exactly the ones the dynamic stage must test.

Soundness contract (checked by ``tests/test_static_commutativity.py``
against the dynamic oracle on the benchmark suites): whenever dynamic
DCA reaches a real verdict for a loop — ``commutative`` after full
testing or ``non-commutative``/``runtime-fault`` from a perturbed
schedule — a ``PROVEN_*`` claim for that loop agrees with it.  A
``PROVEN_NONCOMMUTATIVE`` claim is certain only for executions reaching
two iterations and for per-exit (strict) live-out comparison, so
:class:`repro.core.dca.DcaAnalyzer` gates its use of the static verdict
on the profiled trip count and the live-out policy.

Every verdict carries a chain of :class:`Evidence` facts so that the
diagnostics engine (:mod:`repro.analysis.diagnostics`) can explain *why*
— turning DCA's binary answer into an explainable report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.affine import (
    AffineContext,
    _add,
    _scale,
    cross_iteration_dependence,
)
from repro.analysis.alias import PointsTo
from repro.analysis.defuse import ReachingDefs
from repro.analysis.liveness import Liveness, LoopLiveness
from repro.analysis.loops import Loop, LoopForest, build_loop_forest
from repro.analysis.postdom import ControlDependence
from repro.analysis.purity import EffectAnalysis
from repro.analysis.reductions import (
    CARRIED_UNKNOWN,
    INDUCTION,
    POINTER_CHASE,
    REDUCTION_ADD,
    REDUCTION_MINMAX,
    REDUCTION_MINMAX_COND,
    REDUCTION_MUL,
    classify_loop,
)
from repro.analysis.specs import (
    AnnotationReport,
    SpecRegistry,
    check_annotations,
    recognize_chain_inserts,
)
from repro.ir.function import Function, Module
from repro.ir.instructions import (
    BinOp,
    Call,
    CallBuiltin,
    LoadGlobal,
    Mov,
    NewArray,
    NewStruct,
    Reg,
    Ret,
    SetField,
    SetIndex,
    StoreGlobal,
    UnOp,
)
from repro.lang.builtins import builtin_is_pure
from repro.lang.types import ArrayType, IntType

__all__ = [
    "Evidence",
    "PROVEN_COMMUTATIVE",
    "PROVEN_NONCOMMUTATIVE",
    "StaticCommutativityAnalysis",
    "StaticLoopVerdict",
    "UNKNOWN",
]

#: Static verdicts.
PROVEN_COMMUTATIVE = "proven-commutative"
PROVEN_NONCOMMUTATIVE = "proven-noncommutative"
UNKNOWN = "unknown"


@dataclass(frozen=True)
class Evidence:
    """One structured fact supporting (or blocking) a static verdict.

    ``kind`` is a stable machine tag; ``detail`` the human sentence;
    ``site`` an optional ``block[index]`` anchor inside the loop.
    """

    kind: str
    detail: str
    site: Optional[str] = None

    def __str__(self) -> str:
        anchor = f" @ {self.site}" if self.site else ""
        return f"[{self.kind}] {self.detail}{anchor}"


@dataclass
class StaticLoopVerdict:
    """The static classifier's result for one source loop."""

    label: str
    function: str
    line: int
    kind: str
    verdict: str
    #: Facts establishing the verdict (for PROVEN_*) or the blockers that
    #: prevented a proof (for UNKNOWN).
    evidence: List[Evidence] = field(default_factory=list)
    #: The loop has no payload to permute (statically); the dynamic stage
    #: reports such loops as ``iterator-only``, so the pre-screen defers.
    payload_empty: bool = False
    #: The proof consumed declared commutativity specs: it holds modulo
    #: the declared equivalence (multiset containers, monoid values) and
    #: therefore only stands in for a spec-aware verification run.
    used_specs: bool = False

    @property
    def is_proven(self) -> bool:
        return self.verdict != UNKNOWN

    def headline(self) -> str:
        """One-line justification (the strongest piece of evidence)."""
        return self.evidence[0].detail if self.evidence else self.verdict

    def to_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "label": self.label,
            "function": self.function,
            "line": self.line,
            "kind": self.kind,
            "verdict": self.verdict,
            "payload_empty": self.payload_empty,
            "evidence": [
                {"kind": e.kind, "detail": e.detail, "site": e.site}
                for e in self.evidence
            ],
        }
        # Emitted only when set, so specs-off serializations are
        # byte-identical to the pre-spec format.
        if self.used_specs:
            row["used_specs"] = True
        return row

    def __str__(self) -> str:
        return f"{self.label}: {self.verdict} ({self.headline()})"


#: Carried-scalar classes whose final value is exact under any payload
#: order: min/max pick the same extremum regardless of evaluation order
#: (for floats too), and the recognizer guarantees the accumulator never
#: escapes its own update chain, so intermediate values cannot leak.
_ORDER_INVARIANT_CARRIED = frozenset(
    {REDUCTION_MINMAX, REDUCTION_MINMAX_COND}
)
#: Reduction classes exact only over integers (float reassociation
#: changes rounding, which the dynamic stage may or may not tolerate
#: depending on ``rtol`` — not provable statically).
_INT_ONLY_REDUCTIONS = frozenset({REDUCTION_ADD, REDUCTION_MUL})


class StaticCommutativityAnalysis:
    """Classify every source loop of a module statically.

    Shares one points-to graph and one effect analysis across all loops;
    per-function analyses (reaching defs, control dependence, liveness)
    are computed once per function.
    """

    def __init__(self, module: Module, specs: Optional[SpecRegistry] = None):
        self.module = module
        self.effects = EffectAnalysis(module)
        self.points_to = PointsTo(module)
        #: Commutativity-spec registry (None: specs-off, the default —
        #: verdicts are then byte-identical to the pre-spec prover).
        self.specs = specs
        #: Validated ``commutative`` annotations (function name ->
        #: AnnotationReport).  Only *sound* declarations are ever
        #: consumed; unsound ones surface through ``repro lint``, never
        #: silently through a waiver.
        self.annotations: Dict[str, AnnotationReport] = (
            check_annotations(module, specs, self.effects, self.points_to)
            if specs is not None
            else {}
        )
        self.verdicts: Dict[str, StaticLoopVerdict] = {}
        self._analyzed = False

    def analyze(self) -> Dict[str, StaticLoopVerdict]:
        if self._analyzed:
            return self.verdicts
        for func in self.module.functions.values():
            forest = build_loop_forest(func)
            if not any(label in forest.loops for label in func.loops):
                continue
            reaching = ReachingDefs(func)
            controldep = ControlDependence(func)
            liveness = Liveness(func)
            for label, meta in func.loops.items():
                if label not in forest.loops:
                    continue
                self.verdicts[label] = self._classify(
                    func, forest, forest.loops[label], meta,
                    reaching, controldep, liveness,
                )
        self._analyzed = True
        return self.verdicts

    def proven(self) -> Dict[str, StaticLoopVerdict]:
        return {
            label: v for label, v in self.analyze().items() if v.is_proven
        }

    # -- per-loop classification ----------------------------------------------

    def _classify(
        self,
        func: Function,
        forest: LoopForest,
        loop: Loop,
        meta,
        reaching: ReachingDefs,
        controldep: ControlDependence,
        liveness: Liveness,
    ) -> StaticLoopVerdict:
        # Imported lazily: repro.core imports repro.analysis at package
        # init, so a module-level import here would be circular.
        from repro.core.iterator_recognition import separate

        verdict = StaticLoopVerdict(
            label=loop.label,
            function=func.name,
            line=meta.line,
            kind=meta.kind,
            verdict=UNKNOWN,
        )

        # Ordered side effects: any I/O inside the loop (or a callee) is
        # emitted in iteration order — permuting iterations permutes the
        # observable output stream.  (Matches DCA's §IV-E exclusion.)
        io_site = self._io_site(func, loop)
        if io_site is not None:
            verdict.verdict = PROVEN_NONCOMMUTATIVE
            verdict.evidence.append(
                Evidence(
                    kind="ordered-io",
                    detail="loop performs I/O in iteration order; permuting "
                    "iterations reorders observable output",
                    site=io_site,
                )
            )
            return verdict

        sep = separate(func, loop, reaching, controldep)
        verdict.payload_empty = sep.payload_is_empty
        if sep.has_return:
            verdict.evidence.append(
                Evidence(
                    kind="loop-return",
                    detail="loop contains a return; not analyzable as a "
                    "permutable iteration space",
                )
            )
            return verdict

        idioms = classify_loop(func, loop)
        ll = LoopLiveness(func, forest, liveness)
        live_out_scalars = ll.live_out_scalars(loop)
        actx = AffineContext(func, loop, forest)
        tested_ivs = actx.tested_ivs()
        iv_steps = {reg: step for reg, (_l, step) in actx.ivs.items()}
        conditional_blocks = self._conditional_blocks(func, loop, controldep)

        # ---- loop-carried race: scalar output race on a live-out --------
        race = self._scalar_output_race(
            func, loop, sep, idioms, live_out_scalars, actx, tested_ivs,
            iv_steps, conditional_blocks,
        )
        if race is not None:
            verdict.verdict = PROVEN_NONCOMMUTATIVE
            verdict.evidence.append(race)
            return verdict

        # ---- commutativity proof ----------------------------------------
        blockers: List[Evidence] = []
        facts: List[Evidence] = []

        # Declared-commutative operations (specs-on only): recognized
        # chain prepends contribute waived instruction sites and a
        # carried head register the scalar rules accept as a fact.  The
        # resulting proof holds modulo the declared equivalence, which
        # ``used_specs`` records for the consumer.
        waived: Set[Tuple[str, int]] = set()
        spec_heads: Set[Reg] = set()
        if self.specs is not None:
            for ins in recognize_chain_inserts(
                func, loop, self.specs, self.module
            ):
                waived |= ins.sites
                if ins.head_reg is not None:
                    spec_heads.add(ins.head_reg)
                head = (
                    ins.head_reg.name
                    if ins.head_reg is not None
                    else f"@{ins.head_global}"
                )
                facts.append(
                    Evidence(
                        kind="spec-chain-insert",
                        detail=f"loop prepends to declared container "
                        f"{ins.struct} through head {head}; the chain "
                        "denotes the multiset of its node contents, "
                        "which any iteration order builds identically",
                    )
                )

        blockers.extend(self._effect_blockers(func, loop, waived, facts))
        blockers.extend(
            self._scalar_blockers(
                func, loop, sep, idioms, live_out_scalars, actx, facts,
                spec_heads,
            )
        )
        if not any(b.kind.startswith("callee") or b.kind in (
            "allocation", "global-write", "pointer-write"
        ) for b in blockers):
            blockers.extend(
                self._access_blockers(
                    func, loop, idioms, actx, tested_ivs, iv_steps, facts
                )
            )

        if blockers:
            verdict.evidence.extend(blockers)
            return verdict

        verdict.verdict = PROVEN_COMMUTATIVE
        verdict.used_specs = any(
            e.kind.startswith("spec-") for e in facts
        )
        if not facts:
            facts.append(
                Evidence(
                    kind="independent-iterations",
                    detail="iterations neither write shared state nor "
                    "carry values between each other",
                )
            )
        facts.insert(
            0,
            Evidence(
                kind="proof",
                detail="all live-outs are provably order-invariant under "
                "any permutation of payload executions",
            ),
        )
        verdict.evidence.extend(facts)
        return verdict

    # -- helpers --------------------------------------------------------------

    def _io_site(self, func: Function, loop: Loop) -> Optional[str]:
        for name in sorted(loop.blocks):
            for idx, instr in enumerate(func.blocks[name].instrs):
                if isinstance(instr, CallBuiltin) and not builtin_is_pure(
                    instr.func
                ):
                    return f"{name}[{idx}]"
                if isinstance(instr, Call):
                    eff = self.effects.effects.get(instr.func)
                    if eff is None or eff.does_io:
                        return f"{name}[{idx}]"
        return None

    @staticmethod
    def _conditional_blocks(
        func: Function, loop: Loop, controldep: ControlDependence
    ) -> Set[str]:
        """Blocks executing conditionally *within* an iteration."""
        exit_blocks = {
            name
            for name in loop.blocks
            if any(s not in loop.blocks for s in func.blocks[name].successors())
        }
        return {
            name
            for name in loop.blocks
            if (controldep.controlling_blocks(name) & loop.blocks) - exit_blocks
        }

    def _def_sites(
        self, func: Function, loop: Loop, reg: Reg
    ) -> List[Tuple[str, int]]:
        sites = []
        for name in sorted(loop.blocks):
            for idx, instr in enumerate(func.blocks[name].instrs):
                if reg in instr.defs():
                    sites.append((name, idx))
        return sites

    def _used_in_loop(self, func: Function, loop: Loop, reg: Reg) -> bool:
        return any(
            reg in instr.uses()
            for name in loop.blocks
            for instr in func.blocks[name].instrs
        )

    def _def_expr(self, actx: AffineContext, instr, site):
        """Affine expression computed by a defining instruction."""
        if isinstance(instr, Mov):
            return actx.expr_of(instr.src, site)
        if isinstance(instr, BinOp) and instr.op in ("+", "-", "*"):
            lhs = actx.expr_of(instr.lhs, site)
            rhs = actx.expr_of(instr.rhs, site)
            if lhs is None or rhs is None:
                return None
            if instr.op in ("+", "-"):
                return _add(lhs, rhs, 1 if instr.op == "+" else -1)
            cl = lhs.get(None, 0) if all(k is None for k in lhs) else None
            cr = rhs.get(None, 0) if all(k is None for k in rhs) else None
            if cl is not None:
                return _scale(rhs, cl)
            if cr is not None:
                return _scale(lhs, cr)
            return None
        if isinstance(instr, UnOp) and instr.op == "-":
            inner = actx.expr_of(instr.operand, site)
            return None if inner is None else _scale(inner, -1)
        return None

    def _scalar_output_race(
        self,
        func: Function,
        loop: Loop,
        sep,
        idioms,
        live_out_scalars: List[Reg],
        actx: AffineContext,
        tested_ivs: Set[Reg],
        iv_steps: Dict[Reg, Optional[int]],
        conditional_blocks: Set[str],
    ) -> Optional[Evidence]:
        """A live-out scalar every iteration overwrites with provably
        distinct values: the final value is decided by execution order.

        The proof needs (a) exactly one unconditional payload-resident
        def, (b) no in-loop reads of the register (no recurrence), (c) an
        integer affine value with a nonzero coefficient on this loop's
        induction variable whose step is statically a nonzero constant —
        distinct iterations then store distinct values, so reversing the
        schedule provably changes the live-out.
        """
        for reg in live_out_scalars:
            if reg in idioms.scalars:  # carried: handled by the idiom rules
                continue
            if not isinstance(func.reg_types.get(reg), IntType):
                continue
            if self._used_in_loop(func, loop, reg):
                continue
            sites = self._def_sites(func, loop, reg)
            if len(sites) != 1:
                continue
            site = sites[0]
            if site[0] in conditional_blocks or site not in sep.payload_sites:
                continue
            instr = func.blocks[site[0]].instrs[site[1]]
            expr = self._def_expr(actx, instr, site)
            if expr is None:
                continue
            # Distinctness: the value's per-iteration derivative is the
            # sum of coeff·step over this loop's induction variables
            # (invariant atoms cancel between iterations).  A nonzero
            # derivative means iteration t and iteration t' store
            # different values whenever t != t', so the reversed
            # schedule provably changes the live-out.  Inner-loop ivs or
            # unknown steps defeat the argument.
            varying = [k for k, v in expr.items() if k is not None and v != 0]
            derivative = 0
            provable = bool(varying)
            for k in varying:
                if k in tested_ivs:
                    step = iv_steps.get(k)
                    if step in (None, 0):
                        provable = False
                        break
                    derivative += expr[k] * step
                elif k in actx.ivs:  # an inner loop's induction variable
                    provable = False
                    break
            if not provable or derivative == 0:
                continue
            return Evidence(
                kind="scalar-output-race",
                detail=f"live-out scalar {reg} is overwritten every "
                "iteration with iteration-dependent values; the last "
                "iteration to run decides its final value",
                site=f"{site[0]}[{site[1]}]",
            )
        return None

    def _effect_blockers(
        self,
        func: Function,
        loop: Loop,
        waived: Optional[Set[Tuple[str, int]]] = None,
        facts: Optional[List[Evidence]] = None,
    ) -> List[Evidence]:
        """Instruction kinds that put the loop beyond the prover's reach.

        ``waived`` sites are the footprint of a recognized declared
        operation (see :func:`repro.analysis.specs.recognize_chain_inserts`)
        and are skipped: they are commutative *by declaration*, under the
        equivalence the declaration names.  Calls to functions whose
        ``commutative`` annotation validated are likewise waived when the
        loop cannot observe the callee's state out-of-band
        (:meth:`_callee_waivable`).
        """
        waived = waived or set()
        blockers: List[Evidence] = []
        loop_writes_heap = any(
            isinstance(instr, (SetIndex, SetField))
            for name in loop.blocks
            for instr in func.blocks[name].instrs
        )
        for name in sorted(loop.blocks):
            for idx, instr in enumerate(func.blocks[name].instrs):
                site = f"{name}[{idx}]"
                if (name, idx) in waived:
                    continue
                if isinstance(instr, (NewStruct, NewArray)):
                    blockers.append(
                        Evidence(
                            kind="allocation",
                            detail="loop allocates; object identity and "
                            "linkage order are not statically tractable",
                            site=site,
                        )
                    )
                elif isinstance(instr, StoreGlobal):
                    blockers.append(
                        Evidence(
                            kind="global-write",
                            detail=f"loop writes global @{instr.name} "
                            "through memory; carried-value analysis "
                            "does not track globals",
                            site=site,
                        )
                    )
                elif isinstance(instr, SetField):
                    blockers.append(
                        Evidence(
                            kind="pointer-write",
                            detail="loop writes a struct field; "
                            "pointer-based heap updates are beyond the "
                            "affine dependence test",
                            site=site,
                        )
                    )
                elif isinstance(instr, Ret):
                    blockers.append(
                        Evidence(
                            kind="loop-return",
                            detail="loop contains a return",
                            site=site,
                        )
                    )
                elif isinstance(instr, Call):
                    eff = self.effects.effects.get(instr.func)
                    if eff is None:
                        blockers.append(
                            Evidence(
                                kind="callee-unknown",
                                detail=f"call to unknown function "
                                f"{instr.func}",
                                site=site,
                            )
                        )
                        continue
                    has_effects = (
                        eff.writes_heap
                        or eff.globals_written
                        or eff.allocates
                    )
                    waived_call = False
                    if has_effects:
                        report = self.annotations.get(instr.func)
                        if (
                            report is not None
                            and report.ok
                            and self._callee_waivable(func, loop, instr, report)
                        ):
                            waived_call = True
                            if facts is not None:
                                facts.append(
                                    Evidence(
                                        kind="spec-callee",
                                        detail=f"callee {instr.func} "
                                        f"validated as a {report.kind} "
                                        "spec; its effects commute by "
                                        "declaration",
                                        site=site,
                                    )
                                )
                        else:
                            blockers.append(
                                Evidence(
                                    kind="callee-effects",
                                    detail=f"callee {instr.func} has side "
                                    "effects (heap/global writes or "
                                    "allocation)",
                                    site=site,
                                )
                            )
                    # Never waived: a callee that reads heap the loop
                    # writes can observe iteration order no matter what
                    # its own (declared) effects are.
                    if (
                        (waived_call or not has_effects)
                        and eff.reads_heap
                        and loop_writes_heap
                    ):
                        blockers.append(
                            Evidence(
                                kind="callee-reads-heap",
                                detail=f"callee {instr.func} reads the "
                                "heap while the loop writes it; the "
                                "dependence test cannot see into calls",
                                site=site,
                            )
                        )
        return blockers

    def _callee_waivable(
        self, func: Function, loop: Loop, call: Call, report: AnnotationReport
    ) -> bool:
        """Whether a validated ``commutative`` callee may be waived *at
        this call site*.

        The annotation check establishes the callee's footprint shape;
        this check establishes that the loop cannot observe the state the
        declaration abstracts:

        * pure / fresh-alloc: always (the heap-read interaction is
          handled separately by the ``callee-reads-heap`` blocker);
        * monoid / prng: the state global's *intermediate* values track
          execution order, so nothing else in the loop may read or write
          it — no direct load/store, no other callee touching it — and
          the call's result (which may leak the intermediate value) must
          be unused.  Multiple call sites of the *same* function compose
          the same update and stay order-invariant.
        """
        if report.kind in ("pure", "fresh-alloc"):
            return True
        gname = report.state_global
        if gname is None:
            return False
        if call.dest is not None and self._used_in_loop(
            func, loop, call.dest
        ):
            return False
        for name in loop.blocks:
            for instr in func.blocks[name].instrs:
                if isinstance(instr, (LoadGlobal, StoreGlobal)):
                    if instr.name == gname:
                        return False
                elif isinstance(instr, Call) and instr.func != call.func:
                    ceff = self.effects.effects.get(instr.func)
                    if ceff is None or gname in (
                        ceff.globals_read | ceff.globals_written
                    ):
                        return False
        return True

    def _scalar_blockers(
        self,
        func: Function,
        loop: Loop,
        sep,
        idioms,
        live_out_scalars: List[Reg],
        actx: AffineContext,
        facts: List[Evidence],
        spec_heads: Optional[Set[Reg]] = None,
    ) -> List[Evidence]:
        blockers: List[Evidence] = []
        spec_heads = spec_heads or set()
        for reg, klass in sorted(
            idioms.scalars.items(), key=lambda kv: kv[0].name
        ):
            if reg in spec_heads:
                # The carried head of a recognized declared-container
                # prepend: its value is order-sensitive (whichever node
                # was linked last), but the declared equivalence erases
                # exactly that — the chain compares as a multiset.
                facts.append(
                    Evidence(
                        kind="spec-chain-head",
                        detail=f"carried pointer {reg} heads a declared "
                        "order-insensitive container; compared as a "
                        "multiset of node contents",
                    )
                )
                continue
            if klass == INDUCTION:
                # An induction's *final* value is always order-invariant,
                # but its intermediate values track the executed order,
                # not the iteration index.  Safe only when the induction
                # lives in the iterator (replayed in program order, so
                # per-iteration values stay correctly bound) or when
                # nothing but its own update chain reads it.
                dsites = set(self._def_sites(func, loop, reg))
                uses_outside = any(
                    reg in instr.uses()
                    for name in loop.blocks
                    for idx, instr in enumerate(func.blocks[name].instrs)
                    if (name, idx) not in dsites
                )
                if all(s in sep.iterator_sites for s in dsites):
                    facts.append(
                        Evidence(
                            kind="carried-induction",
                            detail=f"carried scalar {reg} is an "
                            "iterator-resident induction, replayed in "
                            "program order",
                        )
                    )
                elif not uses_outside:
                    facts.append(
                        Evidence(
                            kind="carried-induction",
                            detail=f"carried scalar {reg} is a pure "
                            "counter; its final value is the iteration "
                            "count regardless of order",
                        )
                    )
                else:
                    blockers.append(
                        Evidence(
                            kind="payload-induction",
                            detail=f"induction {reg} advances inside the "
                            "payload and its intermediate values are read "
                            "by other instructions; those values track "
                            "execution order",
                        )
                    )
            elif klass in _ORDER_INVARIANT_CARRIED:
                facts.append(
                    Evidence(
                        kind=f"carried-{klass}",
                        detail=f"carried scalar {reg} is a {klass}; its "
                        "final value is order-invariant",
                    )
                )
            elif klass in _INT_ONLY_REDUCTIONS:
                if isinstance(func.reg_types.get(reg), IntType):
                    facts.append(
                        Evidence(
                            kind=f"carried-{klass}",
                            detail=f"carried scalar {reg} is an integer "
                            f"{klass}; exact under reassociation",
                        )
                    )
                else:
                    blockers.append(
                        Evidence(
                            kind="float-reduction",
                            detail=f"carried scalar {reg} is a "
                            "floating-point reduction; reassociation "
                            "error is workload-dependent",
                        )
                    )
            elif klass == POINTER_CHASE:
                dsites = self._def_sites(func, loop, reg)
                if all(s in sep.iterator_sites for s in dsites):
                    facts.append(
                        Evidence(
                            kind="carried-pointer-chase",
                            detail=f"carried pointer {reg} belongs to the "
                            "iterator, which is replayed in program order",
                        )
                    )
                else:
                    blockers.append(
                        Evidence(
                            kind="payload-pointer-chase",
                            detail=f"carried pointer {reg} advances inside "
                            "the payload; traversal order is not provably "
                            "order-invariant",
                        )
                    )
            else:
                blockers.append(
                    Evidence(
                        kind="carried-dependence",
                        detail=f"loop-carried flow dependence on scalar "
                        f"{reg} ({klass}); iterations are not independent",
                    )
                )

        carried = set(idioms.scalars)
        for reg in live_out_scalars:
            if reg in carried:
                continue
            dsites = self._def_sites(func, loop, reg)
            if dsites and all(s in sep.iterator_sites for s in dsites):
                continue  # iterator value: replayed in original order
            # A def is order-safe when every site stores the *same*
            # loop-invariant value: the live-out then does not depend on
            # which payload execution ran last.  (Affine atoms other
            # than induction variables are loop-invariant registers by
            # construction of ``expr_of``.)
            exprs = [
                self._def_expr(actx, func.blocks[s[0]].instrs[s[1]], s)
                for s in dsites
            ]
            invariant = [
                e
                for e in exprs
                if e is not None
                and not any(
                    k in actx.ivs and v != 0
                    for k, v in e.items()
                    if k is not None
                )
            ]
            if (
                dsites
                and len(invariant) == len(exprs)
                and all(e == exprs[0] for e in exprs)
            ):
                facts.append(
                    Evidence(
                        kind="invariant-live-out",
                        detail=f"live-out scalar {reg} is assigned the "
                        "same loop-invariant value by every iteration",
                    )
                )
                continue
            blockers.append(
                Evidence(
                    kind="last-value",
                    detail=f"live-out scalar {reg} keeps the value of "
                    "whichever payload execution ran last",
                )
            )
        return blockers

    def _access_blockers(
        self,
        func: Function,
        loop: Loop,
        idioms,
        actx: AffineContext,
        tested_ivs: Set[Reg],
        iv_steps: Dict[Reg, Optional[int]],
        facts: List[Evidence],
    ) -> List[Evidence]:
        has_array_write = any(
            isinstance(instr, SetIndex)
            for name in loop.blocks
            for instr in func.blocks[name].instrs
        )
        if not has_array_write:
            return []

        blockers: List[Evidence] = []
        hist_sites, hist_arrays, hist_blockers = self._histograms(func, idioms)
        blockers.extend(hist_blockers)

        accesses = actx.collect_accesses()
        if accesses is None:
            blockers.append(
                Evidence(
                    kind="unresolved-access",
                    detail="an array access has no statically resolvable "
                    "base (aliasing through loop-varying references)",
                )
            )
            return blockers

        plain = []
        for acc in accesses:
            if acc.site in hist_sites:
                continue
            if any(sub is None for sub in acc.subscripts):
                blockers.append(
                    Evidence(
                        kind="non-affine-subscript",
                        detail=f"subscript of access to {acc.root} is not "
                        "affine in the loop's induction variables",
                        site=f"{acc.site[0]}[{acc.site[1]}]",
                    )
                )
                continue
            plain.append(acc)
        if blockers:
            return blockers

        for i, a in enumerate(plain):
            for b in plain[i:]:
                if not (a.is_write or b.is_write):
                    continue
                if not self.points_to.may_alias(func.name, a.root, b.root):
                    continue
                if a.root != b.root:
                    blockers.append(
                        Evidence(
                            kind="may-alias",
                            detail=f"{a.root} and {b.root} may reference "
                            "the same array; no subscript relation exists "
                            "between distinct names",
                        )
                    )
                elif cross_iteration_dependence(a, b, tested_ivs, iv_steps):
                    blockers.append(
                        Evidence(
                            kind="loop-carried-access",
                            detail=f"accesses to {a.root} may touch the "
                            "same element in different iterations",
                            site=f"{a.site[0]}[{a.site[1]}] vs "
                            f"{b.site[0]}[{b.site[1]}]",
                        )
                    )

        # A plain access to an array that also receives histogram updates
        # would race with them; reject the combination conservatively.
        for acc in plain:
            for hist_reg in hist_arrays:
                if self.points_to.may_alias(func.name, acc.root, hist_reg):
                    blockers.append(
                        Evidence(
                            kind="histogram-mixed-access",
                            detail=f"array {hist_reg} receives histogram "
                            f"updates but is also accessed directly via "
                            f"{acc.root}",
                            site=f"{acc.site[0]}[{acc.site[1]}]",
                        )
                    )

        if blockers:
            return blockers

        if hist_arrays:
            facts.append(
                Evidence(
                    kind="histogram",
                    detail="histogram updates use commuting integer "
                    "operations; colliding indices still produce "
                    "order-invariant totals",
                )
            )
        if plain:
            facts.append(
                Evidence(
                    kind="affine-independent",
                    detail="every array access is affine and no two "
                    "iterations touch the same element",
                )
            )
        return blockers

    def _histograms(self, func: Function, idioms):
        """Validated histogram sites: integer arrays, one commuting op
        family per array (``+``/``-`` mix, or ``*`` alone)."""
        blockers: List[Evidence] = []
        per_array: Dict[Reg, Set[str]] = {}
        for hist in idioms.histograms:
            per_array.setdefault(hist.array, set()).add(hist.op)
        valid_arrays: Set[Reg] = set()
        for array, ops in per_array.items():
            atype = func.reg_types.get(array)
            elem_int = isinstance(atype, ArrayType) and isinstance(
                atype.elem, IntType
            )
            commuting = ops <= {"+", "-"} or ops == {"*"}
            if elem_int and commuting:
                valid_arrays.add(array)
            else:
                blockers.append(
                    Evidence(
                        kind="histogram-unprovable",
                        detail=f"histogram on {array} is not exactly "
                        "reassociable "
                        f"({'float elements' if not elem_int else 'mixed ops'})",
                    )
                )
        sites = {
            site
            for hist in idioms.histograms
            if hist.array in valid_arrays
            for site in (hist.get_site, hist.set_site)
        }
        return sites, valid_arrays, blockers
