"""Reaching definitions and def-use chains at instruction granularity.

Instruction sites are ``(block_name, index)`` pairs.  The analysis is a
standard forward may-reach data flow over the non-SSA register IR; the
def-use graph it induces is the substrate of the generalized iterator
recognition in :mod:`repro.core.iterator_recognition`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Instr, Reg

__all__ = [
    "DefSite",
    "DefUseGraph",
    "ReachingDefs",
    "Site",
]

Site = Tuple[str, int]


@dataclass(frozen=True)
class DefSite:
    """One definition of one register."""

    site: Site
    reg: Reg


class ReachingDefs:
    """Forward may-reaching definitions for one function."""

    def __init__(self, func: Function):
        self.func = func
        #: All definition sites, per register.
        self.def_sites: Dict[Reg, Set[Site]] = {}
        #: For every (use site, register) pair, the definitions reaching it.
        self._reaching_at_use: Dict[Tuple[Site, Reg], FrozenSet[Site]] = {}
        self._compute()

    def instr_at(self, site: Site) -> Instr:
        block, idx = site
        return self.func.blocks[block].instrs[idx]

    def reaching(self, site: Site, reg: Reg) -> FrozenSet[Site]:
        """Definition sites of ``reg`` that may reach the use at ``site``."""
        return self._reaching_at_use.get((site, reg), frozenset())

    def defs_of(self, reg: Reg) -> Set[Site]:
        return set(self.def_sites.get(reg, set()))

    # -- computation ------------------------------------------------------------

    def _compute(self) -> None:
        func = self.func
        # Parameters count as definitions at a pseudo-site ("", -1).
        param_site: Site = ("", -1)

        # Enumerate every definition once; the fixpoint then runs on
        # integer bitmasks (bit i <-> defs_list[i]) so that union,
        # survivor filtering, and the changed test are single C-level
        # int operations instead of per-element set algebra.
        defs_list: List[Tuple[Reg, Site]] = []
        bit_of: Dict[Tuple[Reg, Site], int] = {}

        def _bit(reg: Reg, site: Site) -> int:
            key = (reg, site)
            b = bit_of.get(key)
            if b is None:
                b = bit_of[key] = 1 << len(defs_list)
                defs_list.append(key)
            return b

        entry_bits = 0
        for reg in func.param_regs():
            self.def_sites.setdefault(reg, set()).add(param_site)
            entry_bits |= _bit(reg, param_site)

        gen_block: Dict[str, Dict[Reg, Site]] = {}
        kill_regs: Dict[str, Set[Reg]] = {}
        for block in func.ordered_blocks():
            gen: Dict[Reg, Site] = {}
            kills: Set[Reg] = set()
            for idx, instr in enumerate(block.instrs):
                for reg in instr.defs():
                    site = (block.name, idx)
                    gen[reg] = site
                    kills.add(reg)
                    self.def_sites.setdefault(reg, set()).add(site)
                    _bit(reg, site)
            gen_block[block.name] = gen
            kill_regs[block.name] = kills

        # A def of ``reg`` kills every def of ``reg``.
        reg_mask: Dict[Reg, int] = {}
        for (reg, site), b in bit_of.items():
            reg_mask[reg] = reg_mask.get(reg, 0) | b

        gen_mask = {
            name: sum(bit_of[(reg, site)] for reg, site in gen.items())
            for name, gen in gen_block.items()
        }
        keep_mask = {}
        for name, kills in kill_regs.items():
            km = 0
            for reg in kills:
                km |= reg_mask[reg]
            keep_mask[name] = ~km

        in_bits = {n: 0 for n in func.block_order}
        out_bits = {n: 0 for n in func.block_order}
        preds = func.predecessors()
        entry = func.entry

        changed = True
        while changed:
            changed = False
            for name in func.block_order:
                ib = entry_bits if name == entry else 0
                for p in preds[name]:
                    ib |= out_bits[p]
                if ib != in_bits[name]:
                    in_bits[name] = ib
                    changed = True
                ob = (ib & keep_mask[name]) | gen_mask[name]
                if ob != out_bits[name]:
                    out_bits[name] = ob
                    changed = True

        # Walk each block once more to record per-use reaching sets.
        for block in func.ordered_blocks():
            current: Dict[Reg, Set[Site]] = {}
            bits = in_bits[block.name]
            while bits:
                low = bits & -bits
                reg, site = defs_list[low.bit_length() - 1]
                current.setdefault(reg, set()).add(site)
                bits ^= low
            for idx, instr in enumerate(block.instrs):
                site = (block.name, idx)
                for reg in instr.uses():
                    self._reaching_at_use[(site, reg)] = frozenset(
                        current.get(reg, set())
                    )
                for reg in instr.defs():
                    current[reg] = {site}


class DefUseGraph:
    """Instruction-level def→use edges derived from reaching definitions."""

    def __init__(self, func: Function, reaching: ReachingDefs = None):
        self.func = func
        self.reaching = reaching or ReachingDefs(func)
        #: def site -> set of use sites
        self.users: Dict[Site, Set[Site]] = {}
        #: use site -> set of def sites feeding it
        self.sources: Dict[Site, Set[Site]] = {}
        self._build()

    def _build(self) -> None:
        for block in self.func.ordered_blocks():
            for idx, instr in enumerate(block.instrs):
                use_site = (block.name, idx)
                for reg in instr.uses():
                    for def_site in self.reaching.reaching(use_site, reg):
                        if def_site == ("", -1):
                            continue  # parameter pseudo-definition
                        self.users.setdefault(def_site, set()).add(use_site)
                        self.sources.setdefault(use_site, set()).add(def_site)

    def sites(self) -> List[Site]:
        out: List[Site] = []
        for block in self.func.ordered_blocks():
            for idx in range(len(block.instrs)):
                out.append((block.name, idx))
        return out
