"""Reaching definitions and def-use chains at instruction granularity.

Instruction sites are ``(block_name, index)`` pairs.  The analysis is a
standard forward may-reach data flow over the non-SSA register IR; the
def-use graph it induces is the substrate of the generalized iterator
recognition in :mod:`repro.core.iterator_recognition`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Instr, Reg

__all__ = [
    "DefSite",
    "DefUseGraph",
    "ReachingDefs",
    "Site",
]

Site = Tuple[str, int]


@dataclass(frozen=True)
class DefSite:
    """One definition of one register."""

    site: Site
    reg: Reg


class ReachingDefs:
    """Forward may-reaching definitions for one function."""

    def __init__(self, func: Function):
        self.func = func
        #: All definition sites, per register.
        self.def_sites: Dict[Reg, Set[Site]] = {}
        #: For every (use site, register) pair, the definitions reaching it.
        self._reaching_at_use: Dict[Tuple[Site, Reg], FrozenSet[Site]] = {}
        self._compute()

    def instr_at(self, site: Site) -> Instr:
        block, idx = site
        return self.func.blocks[block].instrs[idx]

    def reaching(self, site: Site, reg: Reg) -> FrozenSet[Site]:
        """Definition sites of ``reg`` that may reach the use at ``site``."""
        return self._reaching_at_use.get((site, reg), frozenset())

    def defs_of(self, reg: Reg) -> Set[Site]:
        return set(self.def_sites.get(reg, set()))

    # -- computation ------------------------------------------------------------

    def _compute(self) -> None:
        func = self.func
        # Parameters count as definitions at a pseudo-site ("", -1).
        param_site: Site = ("", -1)
        gen_block: Dict[str, Dict[Reg, Site]] = {}
        kill_regs: Dict[str, Set[Reg]] = {}

        for reg in func.param_regs():
            self.def_sites.setdefault(reg, set()).add(param_site)

        for block in func.ordered_blocks():
            gen: Dict[Reg, Site] = {}
            kills: Set[Reg] = set()
            for idx, instr in enumerate(block.instrs):
                for reg in instr.defs():
                    gen[reg] = (block.name, idx)
                    kills.add(reg)
                    self.def_sites.setdefault(reg, set()).add((block.name, idx))
            gen_block[block.name] = gen
            kill_regs[block.name] = kills

        # IN/OUT sets of DefSite objects per block.
        in_sets: Dict[str, Set[DefSite]] = {n: set() for n in func.block_order}
        out_sets: Dict[str, Set[DefSite]] = {n: set() for n in func.block_order}
        entry_defs = {DefSite(param_site, reg) for reg in func.param_regs()}
        preds = func.predecessors()

        changed = True
        while changed:
            changed = False
            for name in func.block_order:
                if name == func.entry:
                    in_set = set(entry_defs)
                else:
                    in_set = set()
                for p in preds[name]:
                    in_set |= out_sets[p]
                if in_set != in_sets[name]:
                    in_sets[name] = in_set
                    changed = True
                survivors = {
                    d for d in in_set if d.reg not in kill_regs[name]
                }
                gen_set = {
                    DefSite(site, reg) for reg, site in gen_block[name].items()
                }
                out_set = survivors | gen_set
                if out_set != out_sets[name]:
                    out_sets[name] = out_set
                    changed = True

        # Walk each block once more to record per-use reaching sets.
        for block in func.ordered_blocks():
            current: Dict[Reg, Set[Site]] = {}
            for d in in_sets[block.name]:
                current.setdefault(d.reg, set()).add(d.site)
            for idx, instr in enumerate(block.instrs):
                site = (block.name, idx)
                for reg in instr.uses():
                    self._reaching_at_use[(site, reg)] = frozenset(
                        current.get(reg, set())
                    )
                for reg in instr.defs():
                    current[reg] = {site}


class DefUseGraph:
    """Instruction-level def→use edges derived from reaching definitions."""

    def __init__(self, func: Function, reaching: ReachingDefs = None):
        self.func = func
        self.reaching = reaching or ReachingDefs(func)
        #: def site -> set of use sites
        self.users: Dict[Site, Set[Site]] = {}
        #: use site -> set of def sites feeding it
        self.sources: Dict[Site, Set[Site]] = {}
        self._build()

    def _build(self) -> None:
        for block in self.func.ordered_blocks():
            for idx, instr in enumerate(block.instrs):
                use_site = (block.name, idx)
                for reg in instr.uses():
                    for def_site in self.reaching.reaching(use_site, reg):
                        if def_site == ("", -1):
                            continue  # parameter pseudo-definition
                        self.users.setdefault(def_site, set()).add(use_site)
                        self.sources.setdefault(use_site, set()).add(def_site)

    def sites(self) -> List[Site]:
        out: List[Site] = []
        for block in self.func.ordered_blocks():
            for idx in range(len(block.instrs)):
                out.append((block.name, idx))
        return out
