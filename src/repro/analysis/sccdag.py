"""SCC-DAG over the dynamic dependence profile — the pipeline tier.

The paper's verdict is binary: a loop either commutes (DOALL) or it
does not.  NOELLE's Parallelizer keeps a middle ground — when the
SCC-DAG of the loop's dependence graph is not one big cycle, the loop
can still be *decoupled-software-pipelined* (DSWP): each strongly
connected component keeps its internal order, components are assigned
to pipeline stages, and iterations stream through the stages.

This module builds that SCC-DAG per loop from two ingredients the
pipeline already computes:

* **dynamic memory dependences** (:class:`~repro.analysis.dynamic_deps.
  LoopDeps`) — writer→reader edges between static instruction sites,
  tagged same- vs cross-iteration, each carrying the concrete location
  so privatization facts apply per edge;
* **static register def→use edges** inside the loop body — these carry
  the scalar recurrences (``cur = cur*3 + a[i]``) that never touch
  memory and would otherwise be invisible to the profile.

Each SCC is classified à la NOELLE's ``collectSCCDAGAttrs``:

* ``parallel`` — acyclic, or every carried feature is an induction or a
  location the profile proved privatizable (clonable per worker);
* ``reduction`` — the only carried features are recognized associative
  accumulators (:mod:`repro.analysis.reductions`) or histogram updates;
* ``sequential`` — anything else (unknown carried scalars, pointer
  chases, cross-iteration flow through shared memory).

:func:`partition_stages` then chunks the SCC-DAG's topological order
into at most ``max_pipeline_stages`` weight-balanced stages; a stage is
replicable ("parallel") when none of its SCCs is sequential.  The
resulting :class:`PipelinePlan` feeds the simulated multicore executor
(:func:`repro.parallel.machine.pipeline_invocation_time`).

Tier resolution (``--tiering`` / ``REPRO_TIERING``) follows the
repo-wide precedence: explicit setting beats environment beats default
off, unit-pinned like ``resolve_schedule_backend``.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.dynamic_deps import LoopDeps
from repro.analysis.loops import Loop
from repro.analysis.reductions import (
    CARRIED_UNKNOWN,
    COMPLEX_REDUCTIONS,
    INDUCTION,
    POINTER_CHASE,
    LoopIdioms,
)
from repro.ir.function import Function

__all__ = [
    "DEFAULT_MAX_PIPELINE_STAGES",
    "ParallelismTier",
    "PipelinePlan",
    "PipelineStage",
    "SCC_PARALLEL",
    "SCC_REDUCTION",
    "SCC_SEQUENTIAL",
    "SccDag",
    "SccNode",
    "TIERING_ENV",
    "TIER_DOALL",
    "TIER_PIPELINE",
    "TIER_REDUCTION",
    "TIER_SEQUENTIAL",
    "build_sccdag",
    "partition_stages",
    "resolve_tiering",
    "stage_shapes",
    "tier_display",
]

#: (func_name, block_name, index) — matches dynamic_deps.Site.
Site = Tuple[str, str, int]


class ParallelismTier(str, enum.Enum):
    """Per-loop parallelization tier (richest applicable transform)."""

    DOALL = "DOALL"
    REDUCTION = "REDUCTION"
    PIPELINE = "PIPELINE"
    SEQUENTIAL = "SEQUENTIAL"


#: Plain-string aliases — reports serialize tiers as these strings.
TIER_DOALL = ParallelismTier.DOALL.value
TIER_REDUCTION = ParallelismTier.REDUCTION.value
TIER_PIPELINE = ParallelismTier.PIPELINE.value
TIER_SEQUENTIAL = ParallelismTier.SEQUENTIAL.value

#: SCC classifications (collectSCCDAGAttrs' vocabulary).
SCC_PARALLEL = "parallel"
SCC_REDUCTION = "reduction"
SCC_SEQUENTIAL = "sequential"

#: Environment fallback for the tiering switch (explicit config wins).
TIERING_ENV = "REPRO_TIERING"

#: Truthy spellings accepted from the environment.
_TRUTHY = frozenset({"1", "true", "yes", "on"})

DEFAULT_MAX_PIPELINE_STAGES = 4


def resolve_tiering(explicit: Optional[bool] = None) -> bool:
    """Whether the pipeline tier runs: explicit > ``REPRO_TIERING`` > off."""
    if explicit is not None:
        return bool(explicit)
    env = os.environ.get(TIERING_ENV, "").strip().lower()
    return env in _TRUTHY


def tier_display(tier: Optional[str], plan: Optional[Dict] = None) -> str:
    """Human-readable tier tag: ``PIPELINE(stages=2)`` / ``DOALL`` / …"""
    if tier is None:
        return "-"
    if tier == TIER_PIPELINE and plan:
        return f"{tier}(stages={len(plan.get('stages', ()))})"
    return tier


# -- SCC-DAG ------------------------------------------------------------------


@dataclass(frozen=True)
class SccNode:
    """One strongly connected component of the loop dependence graph."""

    index: int
    sites: Tuple[Site, ...]
    classification: str
    #: Static instruction count — the stage-balancing weight proxy.
    weight: int
    #: Why the SCC got its classification (sorted, deduplicated).
    reasons: Tuple[str, ...] = ()


@dataclass
class SccDag:
    """Condensation of a loop's dependence graph, topologically ordered."""

    label: str
    nodes: List[SccNode] = field(default_factory=list)
    #: Edges between SCC indices (source precedes target topologically).
    edges: Set[Tuple[int, int]] = field(default_factory=set)
    #: Subset of ``edges`` backed by a cross-iteration memory dependence.
    #: A stage containing both endpoints of such an edge cannot be
    #: replicated (iteration i+1 would race iteration i's producer).
    carried_edges: Set[Tuple[int, int]] = field(default_factory=set)

    def sequential_nodes(self) -> List[SccNode]:
        return [n for n in self.nodes if n.classification == SCC_SEQUENTIAL]

    def classification_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for node in self.nodes:
            counts[node.classification] = (
                counts.get(node.classification, 0) + 1
            )
        return counts


def _loop_sites(func: Function, loop: Loop) -> List[Site]:
    sites: List[Site] = []
    for name in sorted(loop.blocks):
        for idx in range(len(func.blocks[name].instrs)):
            sites.append((func.name, name, idx))
    return sites


def _register_edges(
    func: Function, loop: Loop, sites: Sequence[Site]
) -> Set[Tuple[Site, Site]]:
    """Static def→use edges for registers defined inside the loop."""
    def_sites: Dict[object, List[Site]] = {}
    use_sites: Dict[object, List[Site]] = {}
    for site in sites:
        instr = func.blocks[site[1]].instrs[site[2]]
        for reg in instr.defs():
            def_sites.setdefault(reg, []).append(site)
        for reg in instr.uses():
            use_sites.setdefault(reg, []).append(site)
    edges: Set[Tuple[Site, Site]] = set()
    for reg, defs in def_sites.items():
        for use in use_sites.get(reg, ()):
            for d in defs:
                if d != use:
                    edges.add((d, use))
    return edges


def _scc_partition(
    sites: Sequence[Site], adjacency: Dict[Site, List[Site]]
) -> List[List[Site]]:
    """Iterative Tarjan over the (deterministically ordered) site graph.

    Returns SCCs in reverse topological order of the condensation.
    """
    index_of: Dict[Site, int] = {}
    low: Dict[Site, int] = {}
    on_stack: Set[Site] = set()
    stack: List[Site] = []
    sccs: List[List[Site]] = []
    counter = [0]

    for root in sites:
        if root in index_of:
            continue
        # Explicit work stack: (node, iterator position into successors).
        work: List[Tuple[Site, int]] = [(root, 0)]
        while work:
            node, pos = work[-1]
            if pos == 0:
                index_of[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            succs = adjacency.get(node, ())
            while pos < len(succs):
                succ = succs[pos]
                pos += 1
                work[-1] = (node, pos)
                if succ not in index_of:
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if low[node] == index_of[node]:
                component: List[Site] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs


def build_sccdag(
    func: Function,
    loop: Loop,
    deps: LoopDeps,
    idioms: LoopIdioms,
    is_privatizable: Callable[[Tuple], bool],
) -> SccDag:
    """Condense the loop's dependence graph and classify every SCC.

    ``deps`` supplies the profiled memory edges (all kinds, same- and
    cross-iteration); ``idioms`` the carried-scalar classification;
    ``is_privatizable`` the profile's written-before-read fact for one
    concrete location.
    """
    sites = _loop_sites(func, loop)
    site_set = set(sites)
    edges: Set[Tuple[Site, Site]] = _register_edges(func, loop, sites)
    #: (writer site, reader site) -> concrete locations of the
    #: cross-iteration memory edges between them (privatization needs
    #: every location on the static edge, not just one).
    carried_mem: Dict[Tuple[Site, Site], List[Tuple]] = {}
    carried_flow: Set[Tuple[Site, Site]] = set()
    for edge in deps.edges:
        if edge.writer not in site_set or edge.reader not in site_set:
            continue  # attributed to an enclosing loop's sites
        edges.add((edge.writer, edge.reader))
        if not edge.same_iteration:
            key = (edge.writer, edge.reader)
            carried_mem.setdefault(key, []).append(edge.loc)
            if edge.kind == "raw":
                carried_flow.add(key)

    adjacency: Dict[Site, List[Site]] = {}
    for src, dst in sorted(edges):
        adjacency.setdefault(src, []).append(dst)

    components = _scc_partition(sites, adjacency)
    # Tarjan yields reverse topological order; emit topological.
    components.reverse()

    #: Carried-scalar classes keyed by every def site of the register.
    scalar_class_at: Dict[Site, List[Tuple[str, str]]] = {}
    for site in sites:
        instr = func.blocks[site[1]].instrs[site[2]]
        for reg in instr.defs():
            klass = idioms.scalars.get(reg)
            if klass is not None:
                scalar_class_at.setdefault(site, []).append(
                    (reg.name, klass)
                )
    histogram_sites = {
        (block, idx) for block, idx in idioms.histogram_sites
    }

    dag = SccDag(label=loop.label)
    scc_of: Dict[Site, int] = {}
    for index, component in enumerate(components):
        for site in component:
            scc_of[site] = index
        member_set = set(component)
        cyclic = len(component) > 1 or any(
            (site, site) in edges for site in component
        )
        classification, reasons = _classify_scc(
            component,
            member_set,
            cyclic,
            edges,
            scalar_class_at,
            histogram_sites,
            carried_mem,
            carried_flow,
            is_privatizable,
        )
        dag.nodes.append(
            SccNode(
                index=index,
                sites=tuple(component),
                classification=classification,
                weight=len(component),
                reasons=tuple(sorted(set(reasons))),
            )
        )
    for src, dst in edges:
        a, b = scc_of[src], scc_of[dst]
        if a != b:
            dag.edges.add((a, b))
    for writer, reader in carried_mem:
        a, b = scc_of[writer], scc_of[reader]
        if a != b:
            dag.carried_edges.add((a, b))
    return dag


def _classify_scc(
    component: Sequence[Site],
    member_set: Set[Site],
    cyclic: bool,
    edges: Set[Tuple[Site, Site]],
    scalar_class_at: Dict[Site, List[Tuple[str, str]]],
    histogram_sites: Set[Tuple[str, int]],
    carried_mem: Dict[Tuple[Site, Site], List[Tuple]],
    carried_flow: Set[Tuple[Site, Site]],
    is_privatizable: Callable[[Tuple], bool],
) -> Tuple[str, List[str]]:
    if not cyclic:
        return SCC_PARALLEL, ["acyclic"]

    sequential_reasons: List[str] = []
    reduction_reasons: List[str] = []
    parallel_reasons: List[str] = []

    for site in component:
        for reg_name, klass in scalar_class_at.get(site, ()):
            if klass == INDUCTION:
                parallel_reasons.append(f"induction {reg_name}")
            elif klass in COMPLEX_REDUCTIONS:
                reduction_reasons.append(f"{klass} {reg_name}")
            elif klass in (CARRIED_UNKNOWN, POINTER_CHASE):
                sequential_reasons.append(f"{klass} {reg_name}")

    for (writer, reader), locs in sorted(carried_mem.items()):
        if writer not in member_set or reader not in member_set:
            continue  # carried edge between SCCs: a DAG edge, not a cycle
        w_key, r_key = (writer[1], writer[2]), (reader[1], reader[2])
        if w_key in histogram_sites and r_key in histogram_sites:
            reduction_reasons.append("histogram update")
            continue
        if (writer, reader) not in carried_flow and all(
            is_privatizable(loc) for loc in locs
        ):
            parallel_reasons.append("privatizable location")
            continue
        sequential_reasons.append(
            f"carried memory dependence {writer[1]}[{writer[2]}]"
            f"->{reader[1]}[{reader[2]}]"
        )

    if sequential_reasons:
        return SCC_SEQUENTIAL, sequential_reasons
    if reduction_reasons:
        return SCC_REDUCTION, reduction_reasons
    return SCC_PARALLEL, parallel_reasons or ["cyclic but clonable"]


# -- pipeline stages ----------------------------------------------------------


@dataclass
class PipelineStage:
    """One DSWP stage: a contiguous chunk of the SCC-DAG topo order."""

    index: int
    scc_indices: List[int]
    weight: int
    #: Replicable stage: no sequential SCC, so iterations may spread
    #: over several workers within the stage.
    parallel: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "sccs": list(self.scc_indices),
            "weight": self.weight,
            "parallel": self.parallel,
        }


@dataclass
class PipelinePlan:
    """Stage assignment for one pipelined loop."""

    label: str
    stages: List[PipelineStage] = field(default_factory=list)
    #: SCCs classified sequential across the whole DAG.
    n_sequential: int = 0
    total_weight: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "stages": [stage.to_dict() for stage in self.stages],
            "n_sequential": self.n_sequential,
            "total_weight": self.total_weight,
        }


def stage_shapes(plan: Dict[str, object]) -> List[Tuple[int, bool]]:
    """(weight, replicable) per stage from a serialized plan dict —
    the executor-facing view (:func:`pipeline_invocation_time`)."""
    return [
        (int(stage["weight"]), bool(stage["parallel"]))
        for stage in plan.get("stages", ())
    ]


def _topo_order(dag: SccDag) -> List[int]:
    """Kahn's algorithm with deterministic smallest-index tie-breaks."""
    indegree = {node.index: 0 for node in dag.nodes}
    for _, dst in dag.edges:
        indegree[dst] += 1
    succs: Dict[int, List[int]] = {}
    for src, dst in sorted(dag.edges):
        succs.setdefault(src, []).append(dst)
    ready = sorted(i for i, d in indegree.items() if d == 0)
    order: List[int] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for succ in succs.get(node, ()):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                # Insert keeping `ready` sorted (small DAGs; O(n) fine).
                lo = 0
                while lo < len(ready) and ready[lo] < succ:
                    lo += 1
                ready.insert(lo, succ)
    return order


def partition_stages(
    dag: SccDag, max_stages: int = DEFAULT_MAX_PIPELINE_STAGES
) -> PipelinePlan:
    """Chunk the SCC-DAG topological order into balanced stages.

    Contiguous chunking is sound by construction: every DAG edge points
    forward in the topological order, so a stage only consumes values
    produced by earlier stages.  The chunk boundaries aim for equal
    weight; a stage is closed early when the remaining SCCs are needed
    one-per-stage to reach the target stage count.
    """
    plan = PipelinePlan(label=dag.label)
    order = _topo_order(dag)
    if not order:
        return plan
    nodes = {node.index: node for node in dag.nodes}
    total = sum(nodes[i].weight for i in order)
    plan.total_weight = total
    plan.n_sequential = len(dag.sequential_nodes())
    k = max(1, min(max_stages, len(order)))

    current: List[int] = []
    current_weight = 0
    done_weight = 0
    for pos, index in enumerate(order):
        current.append(index)
        current_weight += nodes[index].weight
        remaining_sccs = len(order) - pos - 1
        remaining_stages = k - len(plan.stages) - 1
        target = (total * (len(plan.stages) + 1) + k - 1) // k
        must_close = remaining_sccs == remaining_stages
        balanced = done_weight + current_weight >= target
        if remaining_stages > 0 and (must_close or balanced):
            plan.stages.append(
                _make_stage(len(plan.stages), current, nodes, dag)
            )
            done_weight += current_weight
            current, current_weight = [], 0
    if current:
        plan.stages.append(
            _make_stage(len(plan.stages), current, nodes, dag)
        )
    return plan


def _make_stage(
    index: int,
    scc_indices: List[int],
    nodes: Dict[int, SccNode],
    dag: SccDag,
) -> PipelineStage:
    members = set(scc_indices)
    replicable = all(
        nodes[i].classification != SCC_SEQUENTIAL for i in scc_indices
    ) and not any(
        src in members and dst in members
        for src, dst in dag.carried_edges
    )
    return PipelineStage(
        index=index,
        scc_indices=list(scc_indices),
        weight=sum(nodes[i].weight for i in scc_indices),
        parallel=replicable,
    )
