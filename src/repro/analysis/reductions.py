"""Static reduction, induction and histogram recognition.

Classifies the loop-carried state of a loop:

* **scalar registers** carried across iterations — induction variables
  (``i = i + c``), pointer-chasing inductions (``p = p->next``; the idiom
  that defeats dependence analysis, paper Fig. 1b), simple reductions
  (``s = s + e`` / ``s = s * e`` / ``min``/``max`` builtins), conditional
  min/max reductions (``if (x < m) { m = x; }`` — the "complex reduction"
  class detected by IDIOMS), or unknown carried scalars;
* **histogram updates** — ``a[f(...)] = a[f(...)] + e`` read-modify-write
  pairs on the same array and index (IDIOMS' histogram class).

The baseline detectors consume these classifications with different
capability sets (see :mod:`repro.baselines`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.loops import Loop
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Call,
    CallBuiltin,
    Const,
    GetField,
    GetIndex,
    Mov,
    Operand,
    Reg,
    SetIndex,
)

__all__ = [
    "CARRIED_UNKNOWN",
    "COMPLEX_REDUCTIONS",
    "HistogramUpdate",
    "INDUCTION",
    "LoopIdioms",
    "POINTER_CHASE",
    "REDUCTION_ADD",
    "REDUCTION_MINMAX",
    "REDUCTION_MINMAX_COND",
    "REDUCTION_MUL",
    "SIMPLE_REDUCTIONS",
    "classify_loop",
]

#: Scalar classifications.
INDUCTION = "induction"
POINTER_CHASE = "pointer-chase"
REDUCTION_ADD = "reduction-add"
REDUCTION_MUL = "reduction-mul"
REDUCTION_MINMAX = "reduction-minmax"
REDUCTION_MINMAX_COND = "reduction-minmax-cond"
CARRIED_UNKNOWN = "carried-unknown"

#: Classes the plain dependence-profiling baseline [8] can exploit.
SIMPLE_REDUCTIONS = frozenset({REDUCTION_ADD, REDUCTION_MUL, REDUCTION_MINMAX})
#: Classes IDIOMS additionally handles.
COMPLEX_REDUCTIONS = SIMPLE_REDUCTIONS | frozenset({REDUCTION_MINMAX_COND})


@dataclass
class HistogramUpdate:
    """A recognized ``a[idx] op= e`` read-modify-write."""

    array: Reg
    get_site: Tuple[str, int]
    set_site: Tuple[str, int]
    op: str


@dataclass
class LoopIdioms:
    """Classification result for one loop."""

    label: str
    #: Loop-carried scalar register classifications.
    scalars: Dict[Reg, str] = field(default_factory=dict)
    #: Recognized histogram updates.
    histograms: List[HistogramUpdate] = field(default_factory=list)
    #: Instruction sites participating in histogram updates.
    histogram_sites: Set[Tuple[str, int]] = field(default_factory=set)

    def carried_of_class(self, classes) -> List[Reg]:
        return [r for r, c in self.scalars.items() if c in classes]

    def unknown_carried(self) -> List[Reg]:
        return self.carried_of_class({CARRIED_UNKNOWN})


def _is_loop_invariant(
    op: Operand, loop: Loop, defs_in_loop: Set[Reg]
) -> bool:
    if isinstance(op, Const):
        return True
    return op not in defs_in_loop


def _carried_regs(func: Function, loop: Loop) -> Tuple[Set[Reg], Set[Reg]]:
    """(loop-carried scalar regs, all regs defined in loop).

    A register is loop-carried when it is defined in the loop and its value
    flows around the back edge: approximated as *live into the header* and
    both defined and used inside the loop.
    """
    from repro.analysis.liveness import Liveness

    liveness = Liveness(func)
    header_live = liveness.live_in[loop.header]
    defs: Set[Reg] = set()
    uses: Set[Reg] = set()
    for name in loop.blocks:
        for instr in func.blocks[name].instrs:
            defs.update(instr.defs())
            uses.update(instr.uses())
    carried = {r for r in defs & uses & header_live}
    return carried, defs


def classify_loop(func: Function, loop: Loop) -> LoopIdioms:
    """Classify the carried scalars and histogram updates of ``loop``."""
    from repro.analysis.postdom import ControlDependence

    result = LoopIdioms(label=loop.label)
    carried, defs_in_loop = _carried_regs(func, loop)
    controldep = ControlDependence(func)
    # Blocks that execute conditionally *within* an iteration: control
    # dependent on an in-loop branch other than the loop's own exits.
    exit_blocks = {
        name
        for name in loop.blocks
        if any(s not in loop.blocks for s in func.blocks[name].successors())
    }
    conditional_blocks = {
        name
        for name in loop.blocks
        if (controldep.controlling_blocks(name) & loop.blocks) - exit_blocks
    }

    # Gather def sites and use sites per carried register.
    def_sites: Dict[Reg, List[Tuple[str, int]]] = {r: [] for r in carried}
    use_sites: Dict[Reg, List[Tuple[str, int]]] = {r: [] for r in carried}
    for name in sorted(loop.blocks):
        for idx, instr in enumerate(func.blocks[name].instrs):
            for r in instr.defs():
                if r in carried:
                    def_sites[r].append((name, idx))
            for r in instr.uses():
                if r in carried:
                    use_sites[r].append((name, idx))

    for reg in carried:
        result.scalars[reg] = _classify_scalar(
            func, loop, reg, def_sites[reg], use_sites[reg], defs_in_loop,
            conditional_blocks,
        )

    _find_histograms(func, loop, defs_in_loop, result)
    return result


def _classify_scalar(
    func: Function,
    loop: Loop,
    reg: Reg,
    dsites: List[Tuple[str, int]],
    usites: List[Tuple[str, int]],
    defs_in_loop: Set[Reg],
    conditional_blocks: Set[str] = frozenset(),
) -> str:
    def instr_at(site):
        return func.blocks[site[0]].instrs[site[1]]

    defs = [instr_at(s) for s in dsites]
    if not defs:
        return CARRIED_UNKNOWN

    # Induction: every def is reg = reg ± invariant, executed on every
    # iteration.  A conditionally bumped cursor (compaction, variable-degree
    # CSR) advances data-dependently: no codegen-substitutable induction.
    unconditional = all(site[0] not in conditional_blocks for site in dsites)
    if unconditional and all(
        isinstance(d, BinOp)
        and d.op in ("+", "-")
        and (
            (d.lhs == reg and _is_loop_invariant(d.rhs, loop, defs_in_loop))
            or (d.op == "+" and d.rhs == reg
                and _is_loop_invariant(d.lhs, loop, defs_in_loop))
        )
        for d in defs
    ):
        return INDUCTION

    # Pointer chase: every def is reg = getfield reg.<field> (p = p->next).
    if all(
        isinstance(d, GetField) and d.obj == reg for d in defs
    ):
        return POINTER_CHASE

    # For reductions the accumulator must not feed anything except its own
    # update chain: every use of reg inside the loop is within a def of reg.
    own_sites = set(dsites)
    escapes = [s for s in usites if s not in own_sites]

    if not escapes:
        if all(
            isinstance(d, BinOp)
            and d.op in ("+", "-")
            and (d.lhs == reg or (d.op == "+" and d.rhs == reg))
            for d in defs
        ):
            return REDUCTION_ADD
        if all(
            isinstance(d, BinOp) and d.op == "*" and reg in (d.lhs, d.rhs)
            for d in defs
        ):
            return REDUCTION_MUL
        if all(
            isinstance(d, CallBuiltin)
            and d.func in ("min", "max")
            and reg in d.args
            for d in defs
        ):
            return REDUCTION_MINMAX

    # Conditional min/max: a single definition not reading reg (a move or a
    # load, e.g. `m = a[i]`) guarded by a branch comparing against reg
    # (`if (a[i] > m) { m = a[i]; }`).  The comparison is the only read of
    # reg outside its own update, so `escapes` holds exactly the compare.
    if len(defs) == 1 and reg not in defs[0].uses() and len(escapes) == 1:
        compare = instr_at(escapes[0])
        if (
            isinstance(compare, BinOp)
            and compare.op in ("<", "<=", ">", ">=")
            and reg in (compare.lhs, compare.rhs)
        ):
            return REDUCTION_MINMAX_COND

    return CARRIED_UNKNOWN


def _find_histograms(
    func: Function, loop: Loop, defs_in_loop: Set[Reg], result: LoopIdioms
) -> None:
    """Recognize ``a[i] = a[i] op e`` read-modify-write triples."""
    for name in sorted(loop.blocks):
        instrs = func.blocks[name].instrs
        for idx, instr in enumerate(instrs):
            if not isinstance(instr, SetIndex):
                continue
            # Find the value's def: BinOp(+/-/*) with one operand loaded
            # from the same array at the same index, earlier in this block.
            value = instr.value
            if not isinstance(value, Reg):
                continue
            binop: Optional[BinOp] = None
            for j in range(idx - 1, -1, -1):
                prev = instrs[j]
                if value in prev.defs():
                    if isinstance(prev, BinOp) and prev.op in ("+", "-", "*"):
                        binop = prev
                        binop_idx = j
                    break
            if binop is None:
                continue
            load: Optional[GetIndex] = None
            for operand in (binop.lhs, binop.rhs):
                if not isinstance(operand, Reg):
                    continue
                for j in range(binop_idx - 1, -1, -1):
                    prev = instrs[j]
                    if operand in prev.defs():
                        if (
                            isinstance(prev, GetIndex)
                            and prev.arr == instr.arr
                            and prev.index == instr.index
                        ):
                            load = prev
                            load_idx = j
                        break
                if load is not None:
                    break
            if load is None or not isinstance(instr.arr, Reg):
                continue
            update = HistogramUpdate(
                array=instr.arr,
                get_site=(name, load_idx),
                set_site=(name, idx),
                op=binop.op,
            )
            result.histograms.append(update)
            result.histogram_sites.add(update.get_site)
            result.histogram_sites.add(update.set_site)
