"""Interprocedural side-effect summaries.

For each function we compute a transitive :class:`FunctionEffects` summary:
which globals it may read/write, whether it touches the heap, allocates, or
performs I/O.  DCA's candidate selection uses ``does_io`` (paper §IV-E:
loops with I/O are excluded); the static baselines use the summaries to
reason about calls inside loops; ICC-style pure-function inlining keys off
``is_pure``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from repro.ir.function import Module
from repro.ir.instructions import (
    Call,
    CallBuiltin,
    Intrinsic,
    LoadGlobal,
    NewArray,
    NewStruct,
    StoreGlobal,
)
from repro.lang.builtins import builtin_is_pure

__all__ = [
    "EffectAnalysis",
    "FunctionEffects",
]


@dataclass
class FunctionEffects:
    """Transitive may-effects of one function."""

    name: str
    does_io: bool = False
    reads_heap: bool = False
    writes_heap: bool = False
    allocates: bool = False
    globals_read: Set[str] = field(default_factory=set)
    globals_written: Set[str] = field(default_factory=set)

    @property
    def is_pure(self) -> bool:
        """No observable side effects and no dependence on mutable state.

        Reading the heap or globals makes a function impure for inlining
        purposes only in the presence of concurrent mutation; for the
        ICC-style baseline we use the strict definition (no writes, no I/O).
        """
        return not (
            self.does_io
            or self.writes_heap
            or self.globals_written
            or self.allocates
        )

    def merge_callee(self, other: "FunctionEffects") -> bool:
        """Fold a callee summary into this one; returns True if changed."""
        before = (
            self.does_io,
            self.reads_heap,
            self.writes_heap,
            self.allocates,
            len(self.globals_read),
            len(self.globals_written),
        )
        self.does_io |= other.does_io
        self.reads_heap |= other.reads_heap
        self.writes_heap |= other.writes_heap
        self.allocates |= other.allocates
        self.globals_read |= other.globals_read
        self.globals_written |= other.globals_written
        after = (
            self.does_io,
            self.reads_heap,
            self.writes_heap,
            self.allocates,
            len(self.globals_read),
            len(self.globals_written),
        )
        return before != after


class EffectAnalysis:
    """Computes fixed-point effect summaries for a whole module."""

    def __init__(self, module: Module):
        self.module = module
        self.effects: Dict[str, FunctionEffects] = {}
        self._callees: Dict[str, Set[str]] = {}
        self._compute()

    def of(self, name: str) -> FunctionEffects:
        return self.effects[name]

    def _compute(self) -> None:
        for func in self.module.functions.values():
            summary = FunctionEffects(func.name)
            callees: Set[str] = set()
            for instr in func.instructions():
                if isinstance(instr, LoadGlobal):
                    summary.globals_read.add(instr.name)
                elif isinstance(instr, StoreGlobal):
                    summary.globals_written.add(instr.name)
                elif isinstance(instr, (NewStruct, NewArray)):
                    summary.allocates = True
                elif isinstance(instr, CallBuiltin):
                    if not builtin_is_pure(instr.func):
                        summary.does_io = True
                elif isinstance(instr, Intrinsic):
                    # Runtime hooks are analysis machinery, not program
                    # effects; they never count as I/O.
                    pass
                elif isinstance(instr, Call):
                    callees.add(instr.func)
                elif instr.is_memory_read() and not isinstance(instr, LoadGlobal):
                    summary.reads_heap = True
                if instr.is_memory_write() and not isinstance(instr, StoreGlobal):
                    summary.writes_heap = True
            self.effects[func.name] = summary
            self._callees[func.name] = callees

        changed = True
        while changed:
            changed = False
            for name, callees in self._callees.items():
                summary = self.effects[name]
                for callee in callees:
                    if callee not in self.effects:
                        # Unknown callee: assume the worst.
                        summary.does_io = True
                        summary.reads_heap = True
                        summary.writes_heap = True
                        continue
                    if summary.merge_callee(self.effects[callee]):
                        changed = True
