"""Affine access analysis and static loop-dependence testing.

This is the machinery behind the Polly- and ICC-style baselines: extract
affine subscript expressions for every array access in a loop nest, then
decide whether the *tested* loop carries a cross-iteration dependence
(ZIV / strong-SIV style reasoning per subscript dimension).

An affine expression is ``const + Σ coeff·atom`` where an atom is either an
induction variable of a loop in the tested nest or a loop-invariant
register.  Expressions are dictionaries ``{atom_or_None: int}`` with
``None`` keying the constant term.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.defuse import ReachingDefs
from repro.analysis.loops import Loop, LoopForest
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Const,
    GetIndex,
    Mov,
    Operand,
    Reg,
    SetIndex,
    UnOp,
)

__all__ = [
    "Affine",
    "AffineContext",
    "ArrayAccess",
    "cross_iteration_dependence",
]

Affine = Dict[object, int]  # keys: Reg atoms or None (constant)


def _add(a: Affine, b: Affine, sign: int = 1) -> Affine:
    out = dict(a)
    for key, coeff in b.items():
        out[key] = out.get(key, 0) + sign * coeff
        if out[key] == 0 and key is not None:
            del out[key]
    return out


def _scale(a: Affine, factor: int) -> Affine:
    return {k: v * factor for k, v in a.items() if v * factor != 0 or k is None}


def _const_only(a: Affine) -> Optional[int]:
    if all(k is None for k in a):
        return a.get(None, 0)
    return None


@dataclass
class ArrayAccess:
    """One array access inside the tested loop."""

    site: Tuple[str, int]
    is_write: bool
    #: Root array register (invariant w.r.t. the tested loop).
    root: Reg
    #: One affine expression per subscript dimension (None = non-affine).
    subscripts: List[Optional[Affine]]


class AffineContext:
    """Affine reasoning scoped to one tested loop (and its nested loops)."""

    def __init__(self, func: Function, loop: Loop, forest: LoopForest):
        self.func = func
        self.loop = loop
        self.reaching = ReachingDefs(func)
        #: iv reg -> (owning loop label, step or None)
        self.ivs: Dict[Reg, Tuple[str, Optional[int]]] = {}
        self._defs_in_loop: Set[Reg] = set()
        for name in loop.blocks:
            for instr in func.blocks[name].instrs:
                self._defs_in_loop.update(instr.defs())
        self._collect_ivs(forest)

    # -- induction variables -----------------------------------------------

    def _collect_ivs(self, forest: LoopForest) -> None:
        nest = [self.loop]
        stack = list(self.loop.children)
        while stack:
            inner = stack.pop()
            nest.append(inner)
            stack.extend(inner.children)
        for loop in nest:
            for reg, step in self._loop_ivs(loop).items():
                self.ivs[reg] = (loop.label, step)

    def _loop_ivs(self, loop: Loop) -> Dict[Reg, Optional[int]]:
        """Registers whose every in-loop def is ``r = r ± const``."""
        defs: Dict[Reg, List[BinOp]] = {}
        bad: Set[Reg] = set()
        for name in loop.blocks:
            for instr in self.func.blocks[name].instrs:
                for reg in instr.defs():
                    if (
                        isinstance(instr, BinOp)
                        and instr.op in ("+", "-")
                        and instr.lhs == reg
                        and isinstance(instr.rhs, Const)
                        and isinstance(instr.rhs.value, int)
                    ):
                        defs.setdefault(reg, []).append(instr)
                    else:
                        bad.add(reg)
        out: Dict[Reg, Optional[int]] = {}
        for reg, updates in defs.items():
            if reg in bad:
                continue
            if len(updates) == 1:
                instr = updates[0]
                step = instr.rhs.value if instr.op == "+" else -instr.rhs.value
                out[reg] = step
            else:
                out[reg] = None  # induction, step statically unclear
        return out

    def tested_ivs(self) -> Set[Reg]:
        return {
            reg for reg, (label, _s) in self.ivs.items() if label == self.loop.label
        }

    # -- affine expression resolution --------------------------------------------

    def expr_of(
        self, op: Operand, site: Tuple[str, int], _guard: Optional[Set] = None
    ) -> Optional[Affine]:
        if isinstance(op, Const):
            if isinstance(op.value, int) and not isinstance(op.value, bool):
                return {None: op.value}
            return None
        reg = op
        if reg in self.ivs:
            return {reg: 1, None: 0}
        if reg not in self._defs_in_loop:
            return {reg: 1, None: 0}  # loop-invariant symbol
        guard = _guard or set()
        if reg in guard:
            return None
        guard = guard | {reg}

        sites = self.reaching.reaching(site, reg)
        in_loop = [s for s in sites if s[0] in self.loop.blocks]
        if len(sites) != 1 or len(in_loop) != 1:
            return None  # merged values: not a simple affine chain
        def_site = in_loop[0]
        instr = self.func.blocks[def_site[0]].instrs[def_site[1]]
        if isinstance(instr, Mov):
            return self.expr_of(instr.src, def_site, guard)
        if isinstance(instr, BinOp):
            if instr.op in ("+", "-"):
                lhs = self.expr_of(instr.lhs, def_site, guard)
                rhs = self.expr_of(instr.rhs, def_site, guard)
                if lhs is None or rhs is None:
                    return None
                return _add(lhs, rhs, 1 if instr.op == "+" else -1)
            if instr.op == "*":
                lhs = self.expr_of(instr.lhs, def_site, guard)
                rhs = self.expr_of(instr.rhs, def_site, guard)
                if lhs is None or rhs is None:
                    return None
                cl, cr = _const_only(lhs), _const_only(rhs)
                if cl is not None:
                    return _scale(rhs, cl)
                if cr is not None:
                    return _scale(lhs, cr)
                return None
            if instr.op == "%" or instr.op == "/":
                return None
        if isinstance(instr, UnOp) and instr.op == "-":
            inner = self.expr_of(instr.operand, def_site, guard)
            return None if inner is None else _scale(inner, -1)
        return None

    # -- access collection ---------------------------------------------------------

    def root_array(
        self, arr: Operand, site: Tuple[str, int], prefix: List[Optional[Affine]]
    ) -> Optional[Reg]:
        """Chase ``row = m[i]`` chains to the invariant root array register.

        Prepends outer subscripts to ``prefix`` as it walks up.
        """
        if not isinstance(arr, Reg):
            return None
        if arr not in self._defs_in_loop:
            return arr
        sites = self.reaching.reaching(site, arr)
        if len(sites) != 1:
            return None
        def_site = next(iter(sites))
        if def_site[0] not in self.loop.blocks:
            return arr
        instr = self.func.blocks[def_site[0]].instrs[def_site[1]]
        if isinstance(instr, Mov):
            return self.root_array(instr.src, def_site, prefix)
        if isinstance(instr, GetIndex):
            prefix.insert(0, self.expr_of(instr.index, def_site))
            return self.root_array(instr.arr, def_site, prefix)
        return None

    def collect_accesses(self) -> Optional[List[ArrayAccess]]:
        """All array accesses in the loop; None when one is unresolvable."""
        accesses: List[ArrayAccess] = []
        for name in sorted(self.loop.blocks):
            for idx, instr in enumerate(self.func.blocks[name].instrs):
                site = (name, idx)
                if isinstance(instr, (GetIndex, SetIndex)):
                    prefix: List[Optional[Affine]] = []
                    root = self.root_array(instr.arr, site, prefix)
                    if root is None:
                        return None
                    subs = prefix + [self.expr_of(instr.index, site)]
                    accesses.append(
                        ArrayAccess(
                            site=site,
                            is_write=isinstance(instr, SetIndex),
                            root=root,
                            subscripts=subs,
                        )
                    )
        return accesses


# ---------------------------------------------------------------------------
# Dependence testing
# ---------------------------------------------------------------------------


def _dim_relation(
    f: Optional[Affine],
    g: Optional[Affine],
    tested_ivs: Set[Reg],
    iv_steps: Dict[Reg, Optional[int]],
) -> str:
    """Relation of one subscript dimension across two *different* iterations.

    Returns "never" (locations can never coincide), "same-iter-only"
    (coincide only when the two iterations are equal), or "maybe".
    """
    if f is None or g is None:
        return "maybe"
    varying_f = {k for k, v in f.items() if k is not None and v != 0}
    varying_g = {k for k, v in g.items() if k is not None and v != 0}
    diff = _add(f, g, -1)
    diff_varying = {k for k, v in diff.items() if k is not None and v != 0}

    if not varying_f and not varying_g:
        # ZIV: two fixed locations.
        return "never" if diff.get(None, 0) != 0 else "maybe"

    if not diff_varying and diff.get(None, 0) == 0:
        # Identical expressions.  They collide across iterations i1 != i2
        # only if the expression is insensitive to the tested ivs.
        derivative = 0
        known = True
        sensitive = False
        for iv in varying_f & tested_ivs:
            sensitive = True
            step = iv_steps.get(iv)
            if step is None:
                known = False
            else:
                derivative += f.get(iv, 0) * step
        others = varying_f - tested_ivs
        if sensitive and not others:
            if known and derivative != 0:
                return "same-iter-only"
            if not known and len(varying_f & tested_ivs) == 1:
                # Single iv with unknown but nonzero step: still injective
                # only if the step never changes sign; be conservative.
                return "maybe"
        return "maybe"
    return "maybe"


def cross_iteration_dependence(
    a: ArrayAccess,
    b: ArrayAccess,
    tested_ivs: Set[Reg],
    iv_steps: Dict[Reg, Optional[int]],
) -> bool:
    """Whether accesses ``a`` and ``b`` may touch the same location in two
    different iterations of the tested loop."""
    if len(a.subscripts) != len(b.subscripts):
        return True  # shape confusion: be conservative
    for f, g in zip(a.subscripts, b.subscripts):
        if _dim_relation(f, g, tested_ivs, iv_steps) in ("never", "same-iter-only"):
            return False
    return True
