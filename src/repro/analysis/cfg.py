"""CFG utilities: reverse-postorder and dominator computation.

Dominators use the classic iterative data-flow formulation (Cooper, Harper
& Kennedy, *A Simple, Fast Dominance Algorithm*), which is more than fast
enough at the scale of MiniC functions and easy to audit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.function import Function

__all__ = [
    "compute_dominators",
    "dominates",
    "reverse_postorder",
]


def reverse_postorder(func: Function) -> List[str]:
    """Reverse-postorder over blocks reachable from the entry."""
    visited: Set[str] = set()
    postorder: List[str] = []

    def dfs(name: str) -> None:
        # Iterative DFS to avoid Python recursion limits on long CFGs.
        stack: List = [(name, iter(func.blocks[name].successors()))]
        visited.add(name)
        while stack:
            node, succs = stack[-1]
            advanced = False
            for succ in succs:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(func.blocks[succ].successors())))
                    advanced = True
                    break
            if not advanced:
                postorder.append(node)
                stack.pop()

    dfs(func.entry)
    return list(reversed(postorder))


def compute_dominators(func: Function) -> Dict[str, Optional[str]]:
    """Immediate dominators for every reachable block.

    Returns a mapping ``block -> idom`` with the entry mapping to ``None``.
    """
    rpo = reverse_postorder(func)
    index = {name: i for i, name in enumerate(rpo)}
    preds = func.predecessors()

    idom: Dict[str, Optional[str]] = {func.entry: func.entry}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for name in rpo:
            if name == func.entry:
                continue
            candidates = [p for p in preds[name] if p in idom and p in index]
            if not candidates:
                continue
            new_idom = candidates[0]
            for p in candidates[1:]:
                new_idom = intersect(new_idom, p)
            if idom.get(name) != new_idom:
                idom[name] = new_idom
                changed = True

    result: Dict[str, Optional[str]] = {}
    for name in rpo:
        result[name] = None if name == func.entry else idom.get(name)
    return result


def dominates(
    idom: Dict[str, Optional[str]], a: str, b: str
) -> bool:
    """Whether block ``a`` dominates block ``b`` (reflexive)."""
    node: Optional[str] = b
    while node is not None:
        if node == a:
            return True
        node = idom.get(node)
    return False
