"""Natural-loop detection and the loop forest.

A natural loop is identified by a back edge ``latch -> header`` where the
header dominates the latch.  Loops sharing a header are merged.  The forest
records nesting, exit edges, and the mapping back to the stable source-level
loop labels assigned during lowering (``<function>.L<n>``); loops created by
transformations (e.g. DCA dispatch loops) receive anonymous labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cfg import compute_dominators, dominates, reverse_postorder
from repro.ir.function import Function

__all__ = [
    "Loop",
    "LoopForest",
    "build_loop_forest",
    "invalidate_loops",
]


@dataclass
class Loop:
    """One natural loop."""

    label: str
    header: str
    blocks: Set[str] = field(default_factory=set)
    latches: Set[str] = field(default_factory=set)
    parent: Optional["Loop"] = None
    children: List["Loop"] = field(default_factory=list)
    #: Source line of the loop statement (0 for synthetic loops).
    line: int = 0
    #: "for" / "while" / "synthetic".
    kind: str = "synthetic"

    @property
    def depth(self) -> int:
        depth = 0
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def contains_block(self, name: str) -> bool:
        return name in self.blocks

    def exit_edges(self, func: Function) -> List[Tuple[str, str]]:
        """Edges leaving the loop as ``(from_block, to_block)`` pairs."""
        edges = []
        for name in sorted(self.blocks):
            for succ in func.blocks[name].successors():
                if succ not in self.blocks:
                    edges.append((name, succ))
        return edges

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Loop({self.label}, header={self.header}, {len(self.blocks)} blocks)"


class LoopForest:
    """All natural loops of a function, with nesting structure."""

    def __init__(self, func: Function):
        self.func = func
        self.loops: Dict[str, Loop] = {}
        self.by_header: Dict[str, Loop] = {}
        #: Innermost loop containing each block (None if not in a loop).
        self.innermost: Dict[str, Optional[Loop]] = {}
        self._build()

    # -- queries --------------------------------------------------------------

    def loop(self, label: str) -> Loop:
        return self.loops[label]

    def top_level(self) -> List[Loop]:
        return [l for l in self.loops.values() if l.parent is None]

    def loop_chain(self, block: str) -> List[Loop]:
        """Loops containing ``block``, outermost first."""
        chain: List[Loop] = []
        loop = self.innermost.get(block)
        while loop is not None:
            chain.append(loop)
            loop = loop.parent
        chain.reverse()
        return chain

    def source_loops(self) -> List[Loop]:
        """Loops corresponding to source constructs, in label order."""
        return [
            self.loops[label]
            for label in self.func.loops
            if label in self.loops
        ]

    # -- construction ------------------------------------------------------------

    def _build(self) -> None:
        func = self.func
        idom = compute_dominators(func)
        rpo = reverse_postorder(func)
        reachable = set(rpo)

        header_to_loop: Dict[str, Loop] = {}
        header_to_source = {
            meta.header: meta for meta in func.loops.values()
        }
        anon_counter = 0

        for name in rpo:
            for succ in func.blocks[name].successors():
                if succ in reachable and dominates(idom, succ, name):
                    # Back edge name -> succ.
                    loop = header_to_loop.get(succ)
                    if loop is None:
                        meta = header_to_source.get(succ)
                        if meta is not None:
                            label, line, kind = meta.label, meta.line, meta.kind
                        else:
                            label = f"{func.name}.anon{anon_counter}"
                            anon_counter += 1
                            line, kind = 0, "synthetic"
                        loop = Loop(
                            label=label, header=succ, line=line, kind=kind
                        )
                        loop.blocks.add(succ)
                        header_to_loop[succ] = loop
                    loop.latches.add(name)
                    self._grow_loop_body(loop, name)

        self.by_header = header_to_loop
        self.loops = {loop.label: loop for loop in header_to_loop.values()}
        self._compute_nesting(rpo)

    def _grow_loop_body(self, loop: Loop, latch: str) -> None:
        """Standard worklist walk of predecessors from the latch."""
        preds = self.func.predecessors()
        stack = [latch]
        while stack:
            name = stack.pop()
            if name in loop.blocks:
                continue
            loop.blocks.add(name)
            stack.extend(preds[name])

    def _compute_nesting(self, rpo: List[str]) -> None:
        # Sort loops by size ascending: the innermost loop containing a block
        # is the smallest loop containing it.
        by_size = sorted(self.loops.values(), key=lambda l: len(l.blocks))
        self.innermost = {name: None for name in rpo}
        assigned: Dict[str, Loop] = {}
        for loop in by_size:
            for name in loop.blocks:
                if name not in assigned:
                    assigned[name] = loop
        self.innermost.update(assigned)

        for loop in by_size:
            # Parent: smallest strictly-larger loop containing the header.
            candidates = [
                other
                for other in self.loops.values()
                if other is not loop
                and loop.header in other.blocks
                and len(other.blocks) > len(loop.blocks)
            ]
            if candidates:
                loop.parent = min(candidates, key=lambda l: len(l.blocks))
                loop.parent.children.append(loop)


def build_loop_forest(func: Function) -> LoopForest:
    """Compute (or fetch a cached) loop forest for ``func``.

    The forest is cached on the function object and invalidated by callers
    that mutate the CFG (transformation passes call ``invalidate_loops``).
    """
    cached = getattr(func, "_loop_forest", None)
    if cached is not None:
        return cached
    forest = LoopForest(func)
    func._loop_forest = forest  # type: ignore[attr-defined]
    return forest


def invalidate_loops(func: Function) -> None:
    """Drop the cached loop forest after a CFG mutation."""
    if hasattr(func, "_loop_forest"):
        del func._loop_forest
