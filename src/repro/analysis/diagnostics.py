"""Diagnostics engine for the static commutativity prover.

Turns :class:`~repro.analysis.commutativity.StaticLoopVerdict` objects
into compiler-style diagnostics with a severity, a location, a headline
message and the full evidence chain, and renders them as text (for
``repro lint``) or JSON (for tooling).

Severities follow the pre-screening semantics rather than "is this a
bug": a proven race is a ``warning`` (parallelizing this loop would be
wrong), a proven-commutative loop is ``info`` (safe to parallelize
without dynamic testing), and an unproven loop is a ``note`` (the
dynamic stage must decide).

The severity names are drawn from the shared scale in
:mod:`repro.obs.events`, so diagnostics can be mirrored into the
structured event log (:meth:`DiagnosticEngine.to_events`) and sort
consistently with runtime events.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.analysis.commutativity import (
    PROVEN_COMMUTATIVE,
    PROVEN_NONCOMMUTATIVE,
    Evidence,
    StaticLoopVerdict,
)
from repro.obs.events import SEVERITIES as EVENT_SEVERITIES

__all__ = [
    "Diagnostic",
    "DiagnosticEngine",
    "SEVERITIES",
    "diagnostic_from_static",
]

#: The subset of the shared severity scale used by lint diagnostics,
#: in the shared scale's order (most severe first).
SEVERITIES = tuple(
    name for name in EVENT_SEVERITIES if name in ("warning", "info", "note")
)
_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}

#: Diagnostic codes, keyed by the leading evidence kind where one exists.
_CODE_BY_EVIDENCE = {
    "ordered-io": "DCA-IO",
    "scalar-output-race": "DCA-RACE",
}


@dataclass
class Diagnostic:
    """One loop-scoped diagnostic."""

    severity: str
    code: str
    function: str
    loop: str
    line: int
    message: str
    evidence: List[Evidence] = field(default_factory=list)

    def format(self) -> str:
        lines = [
            f"{self.function}:{self.line}: {self.severity}: "
            f"[{self.code}] loop {self.loop}: {self.message}"
        ]
        lines.extend(f"    {ev}" for ev in self.evidence)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "severity": self.severity,
            "code": self.code,
            "function": self.function,
            "loop": self.loop,
            "line": self.line,
            "message": self.message,
            "evidence": [
                {"kind": ev.kind, "detail": ev.detail, "site": ev.site}
                for ev in self.evidence
            ],
        }


class DiagnosticEngine:
    """Collects diagnostics and renders them as text or JSON."""

    def __init__(self, program: str = "<program>"):
        self.program = program
        self.diagnostics: List[Diagnostic] = []

    def add(self, diag: Diagnostic) -> None:
        if diag.severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity: {diag.severity}")
        self.diagnostics.append(diag)

    def ingest_static(
        self, verdicts: Iterable[StaticLoopVerdict]
    ) -> None:
        for verdict in verdicts:
            self.add(diagnostic_from_static(verdict))

    def counts(self) -> Dict[str, int]:
        out = {name: 0 for name in SEVERITIES}
        for diag in self.diagnostics:
            out[diag.severity] += 1
        return out

    def _sorted(self) -> List[Diagnostic]:
        return sorted(
            self.diagnostics,
            key=lambda d: (
                _SEVERITY_RANK[d.severity],
                d.function,
                d.line,
                d.loop,
            ),
        )

    def render_text(self) -> str:
        lines = [diag.format() for diag in self._sorted()]
        counts = self.counts()
        summary = ", ".join(
            f"{counts[name]} {name}{'s' if counts[name] != 1 else ''}"
            for name in SEVERITIES
        )
        lines.append(f"{self.program}: {len(self.diagnostics)} loops ({summary})")
        return "\n".join(lines)

    def to_events(self, log, provenance: str = "static") -> int:
        """Mirror every diagnostic into a structured event log
        (:class:`repro.obs.events.EventLog`); returns the count emitted."""
        for diag in self._sorted():
            log.emit(
                diag.severity,
                diag.code,
                diag.message,
                provenance=provenance,
                function=diag.function,
                loop=diag.loop,
                line=diag.line,
            )
        return len(self.diagnostics)

    def render_json(self) -> str:
        return json.dumps(
            {
                "program": self.program,
                "counts": self.counts(),
                "diagnostics": [d.to_dict() for d in self._sorted()],
            },
            indent=2,
        )


def diagnostic_from_static(verdict: StaticLoopVerdict) -> Diagnostic:
    """Map one static verdict onto a diagnostic."""
    if verdict.verdict == PROVEN_NONCOMMUTATIVE:
        severity = "warning"
        code = _CODE_BY_EVIDENCE.get(
            verdict.evidence[0].kind if verdict.evidence else "", "DCA-RACE"
        )
        message = (
            "provably non-commutative: iteration order determines "
            "observable results"
        )
    elif verdict.verdict == PROVEN_COMMUTATIVE:
        severity = "info"
        code = "DCA-SAFE"
        message = (
            "provably commutative: safe to parallelize without dynamic "
            "testing"
        )
    else:
        severity = "note"
        code = "DCA-DYN"
        message = "not statically provable: dynamic testing required"
    return Diagnostic(
        severity=severity,
        code=code,
        function=verdict.function,
        loop=verdict.label,
        line=verdict.line,
        message=message,
        evidence=list(verdict.evidence),
    )
