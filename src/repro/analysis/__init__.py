"""Compiler analyses shared by DCA and the baseline detectors."""

from repro.analysis.affine import (
    AffineContext,
    ArrayAccess,
    cross_iteration_dependence,
)
from repro.analysis.alias import PointsTo
from repro.analysis.cfg import compute_dominators, dominates, reverse_postorder
from repro.analysis.commutativity import (
    PROVEN_COMMUTATIVE,
    PROVEN_NONCOMMUTATIVE,
    UNKNOWN,
    Evidence,
    StaticCommutativityAnalysis,
    StaticLoopVerdict,
)
from repro.analysis.defuse import DefUseGraph, ReachingDefs
from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticEngine,
    diagnostic_from_static,
)
from repro.analysis.dynamic_deps import DynamicDepProfiler
from repro.analysis.liveness import Liveness, LoopLiveness
from repro.analysis.loops import Loop, LoopForest, build_loop_forest, invalidate_loops
from repro.analysis.postdom import ControlDependence, PostDominators
from repro.analysis.purity import EffectAnalysis, FunctionEffects
from repro.analysis.reductions import LoopIdioms, classify_loop
from repro.analysis.sccdag import (
    ParallelismTier,
    PipelinePlan,
    SccDag,
    SccNode,
    build_sccdag,
    partition_stages,
    resolve_tiering,
)

__all__ = [
    "AffineContext",
    "ArrayAccess",
    "ControlDependence",
    "DefUseGraph",
    "Diagnostic",
    "DiagnosticEngine",
    "DynamicDepProfiler",
    "EffectAnalysis",
    "Evidence",
    "FunctionEffects",
    "Liveness",
    "Loop",
    "LoopForest",
    "LoopIdioms",
    "LoopLiveness",
    "PROVEN_COMMUTATIVE",
    "PROVEN_NONCOMMUTATIVE",
    "ParallelismTier",
    "PipelinePlan",
    "PointsTo",
    "PostDominators",
    "ReachingDefs",
    "SccDag",
    "SccNode",
    "StaticCommutativityAnalysis",
    "StaticLoopVerdict",
    "UNKNOWN",
    "build_loop_forest",
    "build_sccdag",
    "classify_loop",
    "compute_dominators",
    "cross_iteration_dependence",
    "diagnostic_from_static",
    "dominates",
    "invalidate_loops",
    "partition_stages",
    "resolve_tiering",
    "reverse_postorder",
]
