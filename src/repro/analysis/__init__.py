"""Compiler analyses shared by DCA and the baseline detectors."""

from repro.analysis.cfg import compute_dominators, dominates, reverse_postorder
from repro.analysis.defuse import DefUseGraph, ReachingDefs
from repro.analysis.liveness import Liveness, LoopLiveness
from repro.analysis.loops import Loop, LoopForest, build_loop_forest, invalidate_loops
from repro.analysis.purity import EffectAnalysis, FunctionEffects

__all__ = [
    "DefUseGraph",
    "EffectAnalysis",
    "FunctionEffects",
    "Liveness",
    "Loop",
    "LoopForest",
    "LoopLiveness",
    "ReachingDefs",
    "build_loop_forest",
    "compute_dominators",
    "dominates",
    "invalidate_loops",
    "reverse_postorder",
]
