"""Flow-insensitive, allocation-site-based points-to analysis.

A lightweight Andersen-style analysis: abstract objects are allocation
sites (``new T`` / ``new T[n]`` instructions).  Field cells are keyed by
(abstract object, field name); array contents use a single ``$elem`` cell
per abstract object.  Calls are handled by parameter/return binding over
the whole module until fixpoint.

The static baseline detectors use :meth:`PointsTo.may_alias` to decide
whether two array/struct references can denote the same storage — e.g.
Polly-style dependence testing assumes distinct allocation sites do not
alias, matching LLVM's ``noalias``/TBAA behaviour on these benchmarks.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.ir.function import Module
from repro.ir.instructions import (
    Call,
    GetField,
    GetIndex,
    LoadGlobal,
    Mov,
    NewArray,
    NewStruct,
    Reg,
    Ret,
    SetField,
    SetIndex,
    StoreGlobal,
)

__all__ = [
    "AbsObj",
    "PointsTo",
]

#: Abstract object: ("alloc", id(instr)) — one per allocation site.
AbsObj = Tuple[str, int]

#: Points-to graph node keys.
#:   ("r", func, reg_name)   register
#:   ("g", name)             global variable
#:   ("f", absobj, field)    struct field cell
#:   ("e", absobj)           array element cell
#:   ("ret", func)           function return value
Node = Tuple


class PointsTo:
    """Module-wide points-to sets."""

    def __init__(self, module: Module):
        self.module = module
        self.pts: Dict[Node, Set[AbsObj]] = {}
        #: Pretty names for allocation sites (debugging).
        self.alloc_names: Dict[AbsObj, str] = {}
        self._compute()

    # -- queries -----------------------------------------------------------

    def reg_node(self, func: str, reg: Reg) -> Node:
        return ("r", func, reg.name)

    def points_to(self, func: str, reg: Reg) -> FrozenSet[AbsObj]:
        return frozenset(self.pts.get(self.reg_node(func, reg), set()))

    def may_alias(self, func: str, a: Reg, b: Reg) -> bool:
        """Whether two reference registers may denote the same object.

        Registers with an empty (unknown) points-to set conservatively
        alias everything.
        """
        if a == b:
            return True
        pa = self.pts.get(self.reg_node(func, a), set())
        pb = self.pts.get(self.reg_node(func, b), set())
        if not pa or not pb:
            return True
        return bool(pa & pb)

    # -- constraint generation and solving ------------------------------------

    def _compute(self) -> None:
        copies: List[Tuple[Node, Node]] = []  # dst ⊇ src
        field_loads: List[Tuple[Node, Node, str]] = []  # dst ⊇ (base).field
        field_stores: List[Tuple[Node, str, Node]] = []  # (base).field ⊇ src
        elem_loads: List[Tuple[Node, Node]] = []  # dst ⊇ (base).$elem
        elem_stores: List[Tuple[Node, Node]] = []  # (base).$elem ⊇ src

        def node_of(func: str, op) -> Node:
            return ("r", func, op.name)

        for func in self.module.functions.values():
            fname = func.name
            for instr in func.instructions():
                if isinstance(instr, (NewStruct, NewArray)):
                    obj: AbsObj = ("alloc", id(instr))
                    self.alloc_names[obj] = f"{fname}:{instr}"
                    self.pts.setdefault(node_of(fname, instr.dest), set()).add(obj)
                elif isinstance(instr, Mov) and isinstance(instr.src, Reg):
                    copies.append((node_of(fname, instr.dest), node_of(fname, instr.src)))
                elif isinstance(instr, GetField) and isinstance(instr.obj, Reg):
                    field_loads.append(
                        (node_of(fname, instr.dest), node_of(fname, instr.obj), instr.field)
                    )
                elif isinstance(instr, SetField):
                    if isinstance(instr.obj, Reg) and isinstance(instr.value, Reg):
                        field_stores.append(
                            (node_of(fname, instr.obj), instr.field, node_of(fname, instr.value))
                        )
                elif isinstance(instr, GetIndex) and isinstance(instr.arr, Reg):
                    elem_loads.append((node_of(fname, instr.dest), node_of(fname, instr.arr)))
                elif isinstance(instr, SetIndex):
                    if isinstance(instr.arr, Reg) and isinstance(instr.value, Reg):
                        elem_stores.append((node_of(fname, instr.value), node_of(fname, instr.arr)))
                elif isinstance(instr, LoadGlobal):
                    copies.append((node_of(fname, instr.dest), ("g", instr.name)))
                elif isinstance(instr, StoreGlobal) and isinstance(instr.src, Reg):
                    copies.append((("g", instr.name), node_of(fname, instr.src)))
                elif isinstance(instr, Call):
                    callee = self.module.functions.get(instr.func)
                    if callee is None:
                        continue
                    for (param, _t), arg in zip(callee.params, instr.args):
                        if isinstance(arg, Reg):
                            copies.append(
                                (("r", callee.name, param.name), node_of(fname, arg))
                            )
                    if instr.dest is not None:
                        copies.append(
                            (node_of(fname, instr.dest), ("ret", callee.name))
                        )
                elif isinstance(instr, Ret) and isinstance(instr.value, Reg):
                    copies.append((("ret", fname), node_of(fname, instr.value)))

        # Naive fixpoint; module sizes are tiny.
        changed = True
        while changed:
            changed = False

            def merge(dst: Node, objs: Set[AbsObj]) -> None:
                nonlocal changed
                if not objs:
                    return
                cur = self.pts.setdefault(dst, set())
                before = len(cur)
                cur |= objs
                if len(cur) != before:
                    changed = True

            for dst, src in copies:
                merge(dst, self.pts.get(src, set()))
            for dst, base, fieldname in field_loads:
                for obj in set(self.pts.get(base, set())):
                    merge(dst, self.pts.get(("f", obj, fieldname), set()))
            for base, fieldname, src in field_stores:
                for obj in set(self.pts.get(base, set())):
                    merge(("f", obj, fieldname), self.pts.get(src, set()))
            for dst, base in elem_loads:
                for obj in set(self.pts.get(base, set())):
                    merge(dst, self.pts.get(("e", obj), set()))
            for src, base in elem_stores:
                for obj in set(self.pts.get(base, set())):
                    merge(("e", obj), self.pts.get(src, set()))
