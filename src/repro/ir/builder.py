"""Helper for constructing IR functions block by block."""

from __future__ import annotations

from typing import Optional

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Instr, Reg
from repro.lang.types import Type


class IRBuilder:
    """Stateful builder appending instructions to a current block."""

    def __init__(self, func: Function):
        self.func = func
        self.current: Optional[BasicBlock] = None
        self._temp_counter = 0
        self._block_counter = 0

    # -- blocks -------------------------------------------------------------

    def new_block(self, hint: str = "bb") -> BasicBlock:
        name = f"{hint}{self._block_counter}"
        self._block_counter += 1
        return self.func.new_block(name)

    def set_block(self, block: BasicBlock) -> None:
        self.current = block

    @property
    def is_terminated(self) -> bool:
        return self.current is not None and self.current.terminator is not None

    # -- registers ----------------------------------------------------------

    def new_temp(self, t: Optional[Type] = None, hint: str = "t") -> Reg:
        reg = Reg(f"{hint}{self._temp_counter}")
        self._temp_counter += 1
        if t is not None:
            self.func.reg_types[reg] = t
        return reg

    def declare_reg(self, name: str, t: Type) -> Reg:
        reg = Reg(name)
        self.func.reg_types[reg] = t
        return reg

    # -- instructions ---------------------------------------------------------

    def emit(self, instr: Instr) -> Instr:
        assert self.current is not None, "no current block"
        if self.current.terminator is not None:
            # Dead code after a terminator (e.g. stmts after `return`) is
            # silently dropped, mirroring a trivial DCE.
            return instr
        self.current.append(instr)
        return instr
