"""IR cleanup passes run after lowering.

``fuse_single_use_temps`` is a tiny copy-fusion: lowering materializes
every expression into a fresh temporary and then ``mov``s it into the
destination register (``%t = add %i, 1`` / ``%i = mov %t``).  When the
temporary has exactly one definition and exactly one use (the mov), the
defining instruction can write the destination directly.  Besides shaving
an instruction per assignment, this restores the canonical shapes
(``i = i + 1``, ``s = s + x``) that the induction/reduction matchers and
the affine analysis expect.
"""

from __future__ import annotations

from typing import Dict

from repro.ir.function import Function, Module
from repro.ir.instructions import Mov, Reg


def fuse_single_use_temps(func: Function) -> int:
    """Fuse ``t = <op> ...; x = mov t`` pairs.  Returns #fused."""
    def_counts: Dict[Reg, int] = {}
    use_counts: Dict[Reg, int] = {}
    for instr in func.instructions():
        for reg in instr.defs():
            def_counts[reg] = def_counts.get(reg, 0) + 1
        for reg in instr.uses():
            use_counts[reg] = use_counts.get(reg, 0) + 1

    fused = 0
    for block in func.ordered_blocks():
        instrs = block.instrs
        i = 0
        while i < len(instrs):
            instr = instrs[i]
            if (
                isinstance(instr, Mov)
                and isinstance(instr.src, Reg)
                and def_counts.get(instr.src, 0) == 1
                and use_counts.get(instr.src, 0) == 1
                and instr.src != instr.dest
            ):
                temp = instr.src
                dest = instr.dest
                # Find the temp's defining instruction earlier in this block,
                # ensuring neither dest nor temp is redefined in between and
                # dest is not read in between (its old value must stay
                # observable up to the mov).
                for j in range(i - 1, -1, -1):
                    prev = instrs[j]
                    if temp in prev.defs():
                        if isinstance(prev, Mov):
                            break  # chains of movs are left alone
                        safe = True
                        for k in range(j + 1, i):
                            mid = instrs[k]
                            if dest in mid.defs() or dest in mid.uses():
                                safe = False
                                break
                            if temp in mid.uses() or temp in mid.defs():
                                safe = False
                                break
                        if safe:
                            prev.replace_defs({temp: dest})
                            del instrs[i]
                            def_counts[dest] = def_counts.get(dest, 0)  # unchanged
                            fused += 1
                            i -= 1
                        break
                    if dest in prev.defs():
                        break
            i += 1
    return fused


def run_cleanups(module: Module) -> None:
    """Run the standard post-lowering cleanup pipeline."""
    for func in module.functions.values():
        fuse_single_use_temps(func)
