"""AST → IR lowering.

Lowering turns the checked MiniC AST into the three-address CFG IR:

* locals and parameters become virtual registers (MiniC has no address-of
  operator, so scalars never need stack slots);
* globals are accessed through ``LoadGlobal``/``StoreGlobal``;
* control flow becomes explicit blocks with ``Jump``/``Branch`` terminators;
* ``&&``/``||`` short-circuit through control flow;
* every source loop receives a stable label ``<function>.L<n>`` recorded in
  :attr:`repro.ir.function.Function.loops` — all analyses and reports key
  loops by this label.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.lang import ast_nodes as ast
from repro.lang.builtins import is_builtin
from repro.lang.checker import CheckedProgram
from repro.lang.errors import TypeError_
from repro.lang.types import (
    BOOL,
    FLOAT,
    INT,
    VOID,
    ArrayType,
    BoolType,
    FloatType,
    IntType,
    PointerType,
    Type,
    VoidType,
)
from repro.ir.builder import IRBuilder
from repro.ir.function import Function, GlobalVar, Module
from repro.ir.instructions import (
    ArrayLen,
    BinOp,
    Branch,
    Call,
    CallBuiltin,
    Const,
    GetField,
    GetIndex,
    Jump,
    LoadGlobal,
    Mov,
    NewArray,
    NewStruct,
    Operand,
    Reg,
    Ret,
    SetField,
    SetIndex,
    StoreGlobal,
    UnOp,
)

_DEFAULTS = {
    IntType: 0,
    FloatType: 0.0,
    BoolType: False,
}


def default_value(t: Type) -> object:
    """The zero-initial value for a type (null for references)."""
    for klass, value in _DEFAULTS.items():
        if isinstance(t, klass):
            return value
    return None


class _FuncLowering:
    """Lowers one function body."""

    def __init__(self, checked: CheckedProgram, decl: ast.FuncDecl, label_prefix: str):
        self.checked = checked
        self.decl = decl
        params: List[Tuple[Reg, Type]] = []
        self._scopes: List[Dict[str, Reg]] = [{}]
        self._name_counts: Dict[str, int] = {}
        self.func = Function(decl.name, params, decl.return_type)
        self.func.commutative = decl.commutative
        self.builder = IRBuilder(self.func)
        for p in decl.params:
            reg = self._declare_local(p.name, p.param_type)
            params.append((reg, p.param_type))
        self._loop_counter = 0
        self._label_prefix = label_prefix
        #: (break_target, continue_target) stack.
        self._loop_targets: List[Tuple[str, str]] = []

    # -- scope management -----------------------------------------------------

    def _push_scope(self) -> None:
        self._scopes.append({})

    def _pop_scope(self) -> None:
        self._scopes.pop()

    def _declare_local(self, name: str, t: Type) -> Reg:
        count = self._name_counts.get(name, 0)
        self._name_counts[name] = count + 1
        reg_name = name if count == 0 else f"{name}.{count}"
        reg = self.builder.declare_reg(reg_name, t)
        self._scopes[-1][name] = reg
        return reg

    def _lookup_local(self, name: str) -> Optional[Reg]:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return None

    # -- main entry -------------------------------------------------------------

    def lower(self) -> Function:
        entry = self.builder.new_block("entry")
        self.builder.set_block(entry)
        self._lower_block(self.decl.body)
        if not self.builder.is_terminated:
            if isinstance(self.decl.return_type, VoidType):
                self.builder.emit(Ret(None))
            else:
                value = default_value(self.decl.return_type)
                self.builder.emit(Ret(Const(value, self.decl.return_type)))
        self.func.remove_unreachable_blocks()
        return self.func

    # -- statements ---------------------------------------------------------------

    def _lower_block(self, stmts: List[ast.Stmt]) -> None:
        self._push_scope()
        for stmt in stmts:
            if self.builder.is_terminated:
                break  # unreachable code after return/break/continue
            self._lower_stmt(stmt)
        self._pop_scope()

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            self._lower_vardecl(stmt)
        elif isinstance(stmt, ast.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            self._lower_return(stmt)
        elif isinstance(stmt, ast.Break):
            target = self._loop_targets[-1][0]
            self.builder.emit(Jump(target, line=stmt.line))
        elif isinstance(stmt, ast.Continue):
            target = self._loop_targets[-1][1]
            self.builder.emit(Jump(target, line=stmt.line))
        else:  # pragma: no cover
            raise TypeError_(f"cannot lower {type(stmt).__name__}", stmt.line)

    def _lower_vardecl(self, stmt: ast.VarDecl) -> None:
        if stmt.init is not None:
            value = self._lower_expr(stmt.init)
            value = self._coerce(value, stmt.init.type, stmt.var_type, stmt.line)
        else:
            value = Const(default_value(stmt.var_type), stmt.var_type)
        reg = self._declare_local(stmt.name, stmt.var_type)
        self.builder.emit(Mov(reg, value, line=stmt.line))

    def _lower_assign(self, stmt: ast.Assign) -> None:
        if stmt.compound_op is not None:
            self._lower_compound_assign(stmt)
            return
        target = stmt.target
        if isinstance(target, ast.Name):
            value = self._lower_expr(stmt.value)
            local = self._lookup_local(target.ident)
            if local is not None:
                value = self._coerce(
                    value, stmt.value.type, self.func.reg_types[local], stmt.line
                )
                self.builder.emit(Mov(local, value, line=stmt.line))
            else:
                gtype = self.checked.globals[target.ident]
                value = self._coerce(value, stmt.value.type, gtype, stmt.line)
                self.builder.emit(StoreGlobal(target.ident, value, line=stmt.line))
        elif isinstance(target, ast.FieldAccess):
            obj = self._lower_expr(target.base)
            value = self._lower_expr(stmt.value)
            value = self._coerce(value, stmt.value.type, target.type, stmt.line)
            self.builder.emit(SetField(obj, target.field_name, value, line=stmt.line))
        elif isinstance(target, ast.IndexAccess):
            arr = self._lower_expr(target.base)
            index = self._lower_expr(target.index)
            value = self._lower_expr(stmt.value)
            value = self._coerce(value, stmt.value.type, target.type, stmt.line)
            self.builder.emit(SetIndex(arr, index, value, line=stmt.line))
        else:  # pragma: no cover - checker rejects other targets
            raise TypeError_("bad assignment target", stmt.line)

    def _lower_compound_assign(self, stmt: ast.Assign) -> None:
        """``target op= value`` with the lvalue evaluated exactly once.

        Produces the canonical read-modify-write shape (for scalars:
        ``x = x op e``; for elements: ``t = a[i]; t2 = t op e; a[i] = t2``)
        that the induction/reduction/histogram matchers recognize.
        """
        target = stmt.target
        op = stmt.compound_op
        ttype = target.type
        rhs = self._lower_expr(stmt.value)
        if isinstance(ttype, FloatType):
            rhs = self._coerce(rhs, stmt.value.type, FLOAT, stmt.line)

        if isinstance(target, ast.Name):
            local = self._lookup_local(target.ident)
            if local is not None:
                self.builder.emit(
                    BinOp(local, op, local, rhs, result_type=ttype, line=stmt.line)
                )
                return
            old = self.builder.new_temp(ttype, hint="g")
            self.builder.emit(LoadGlobal(old, target.ident, line=stmt.line))
            new = self.builder.new_temp(ttype)
            self.builder.emit(
                BinOp(new, op, old, rhs, result_type=ttype, line=stmt.line)
            )
            self.builder.emit(StoreGlobal(target.ident, new, line=stmt.line))
            return
        if isinstance(target, ast.FieldAccess):
            obj = self._lower_expr(target.base)
            old = self.builder.new_temp(ttype, hint="f")
            self.builder.emit(GetField(old, obj, target.field_name, line=stmt.line))
            new = self.builder.new_temp(ttype)
            self.builder.emit(
                BinOp(new, op, old, rhs, result_type=ttype, line=stmt.line)
            )
            self.builder.emit(
                SetField(obj, target.field_name, new, line=stmt.line)
            )
            return
        if isinstance(target, ast.IndexAccess):
            arr = self._lower_expr(target.base)
            idx = self._lower_expr(target.index)
            old = self.builder.new_temp(ttype, hint="e")
            self.builder.emit(GetIndex(old, arr, idx, line=stmt.line))
            new = self.builder.new_temp(ttype)
            self.builder.emit(
                BinOp(new, op, old, rhs, result_type=ttype, line=stmt.line)
            )
            self.builder.emit(SetIndex(arr, idx, new, line=stmt.line))
            return
        raise TypeError_("bad compound assignment target", stmt.line)

    def _lower_if(self, stmt: ast.If) -> None:
        cond = self._lower_condition(stmt.cond)
        then_bb = self.builder.new_block("if.then")
        merge_bb = self.builder.new_block("if.end")
        else_bb = merge_bb
        if stmt.else_body:
            else_bb = self.builder.new_block("if.else")
        self.builder.emit(Branch(cond, then_bb.name, else_bb.name, line=stmt.line))

        self.builder.set_block(then_bb)
        self._lower_block(stmt.then_body)
        if not self.builder.is_terminated:
            self.builder.emit(Jump(merge_bb.name, line=stmt.line))

        if stmt.else_body:
            self.builder.set_block(else_bb)
            self._lower_block(stmt.else_body)
            if not self.builder.is_terminated:
                self.builder.emit(Jump(merge_bb.name, line=stmt.line))

        self.builder.set_block(merge_bb)

    def _new_loop_label(self, line: int, kind: str, header: str) -> str:
        label = f"{self._label_prefix}.L{self._loop_counter}"
        self._loop_counter += 1
        from repro.ir.function import LoopInfoMeta

        self.func.loops[label] = LoopInfoMeta(
            label=label, line=line, header=header, kind=kind
        )
        return label

    def _lower_while(self, stmt: ast.While) -> None:
        header = self.builder.new_block("while.header")
        body = self.builder.new_block("while.body")
        exit_bb = self.builder.new_block("while.end")
        self._new_loop_label(stmt.line, "while", header.name)

        self.builder.emit(Jump(header.name, line=stmt.line))
        self.builder.set_block(header)
        cond = self._lower_condition(stmt.cond)
        self.builder.emit(Branch(cond, body.name, exit_bb.name, line=stmt.line))

        self._loop_targets.append((exit_bb.name, header.name))
        self.builder.set_block(body)
        self._lower_block(stmt.body)
        if not self.builder.is_terminated:
            self.builder.emit(Jump(header.name, line=stmt.line))
        self._loop_targets.pop()

        self.builder.set_block(exit_bb)

    def _lower_for(self, stmt: ast.For) -> None:
        self._push_scope()  # for-init variables scope over the whole loop
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        header = self.builder.new_block("for.header")
        body = self.builder.new_block("for.body")
        step_bb = self.builder.new_block("for.step")
        exit_bb = self.builder.new_block("for.end")
        self._new_loop_label(stmt.line, "for", header.name)

        self.builder.emit(Jump(header.name, line=stmt.line))
        self.builder.set_block(header)
        if stmt.cond is not None:
            cond = self._lower_condition(stmt.cond)
            self.builder.emit(Branch(cond, body.name, exit_bb.name, line=stmt.line))
        else:
            self.builder.emit(Jump(body.name, line=stmt.line))

        self._loop_targets.append((exit_bb.name, step_bb.name))
        self.builder.set_block(body)
        self._lower_block(stmt.body)
        if not self.builder.is_terminated:
            self.builder.emit(Jump(step_bb.name, line=stmt.line))
        self._loop_targets.pop()

        self.builder.set_block(step_bb)
        if stmt.step is not None:
            self._lower_stmt(stmt.step)
        if not self.builder.is_terminated:
            self.builder.emit(Jump(header.name, line=stmt.line))

        self.builder.set_block(exit_bb)
        self._pop_scope()

    def _lower_return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            self.builder.emit(Ret(None, line=stmt.line))
            return
        value = self._lower_expr(stmt.value)
        value = self._coerce(
            value, stmt.value.type, self.decl.return_type, stmt.line
        )
        self.builder.emit(Ret(value, line=stmt.line))

    # -- expressions -----------------------------------------------------------

    def _lower_expr(self, expr: ast.Expr) -> Operand:
        if isinstance(expr, ast.IntLit):
            return Const(expr.value, INT)
        if isinstance(expr, ast.FloatLit):
            return Const(expr.value, FLOAT)
        if isinstance(expr, ast.BoolLit):
            return Const(expr.value, BOOL)
        if isinstance(expr, ast.StringLit):
            return Const(expr.value, None)
        if isinstance(expr, ast.NullLit):
            return Const(None, expr.type)
        if isinstance(expr, ast.Name):
            local = self._lookup_local(expr.ident)
            if local is not None:
                return local
            dest = self.builder.new_temp(expr.type, hint="g")
            self.builder.emit(LoadGlobal(dest, expr.ident, line=expr.line))
            return dest
        if isinstance(expr, ast.FieldAccess):
            obj = self._lower_expr(expr.base)
            dest = self.builder.new_temp(expr.type, hint="f")
            self.builder.emit(GetField(dest, obj, expr.field_name, line=expr.line))
            return dest
        if isinstance(expr, ast.IndexAccess):
            arr = self._lower_expr(expr.base)
            idx = self._lower_expr(expr.index)
            dest = self.builder.new_temp(expr.type, hint="e")
            self.builder.emit(GetIndex(dest, arr, idx, line=expr.line))
            return dest
        if isinstance(expr, ast.NewStruct):
            dest = self.builder.new_temp(expr.type, hint="obj")
            self.builder.emit(NewStruct(dest, expr.struct_name, line=expr.line))
            return dest
        if isinstance(expr, ast.NewArray):
            length = self._lower_expr(expr.length)
            dest = self.builder.new_temp(expr.type, hint="arr")
            self.builder.emit(NewArray(dest, expr.elem_type, length, line=expr.line))
            return dest
        if isinstance(expr, ast.UnOp):
            return self._lower_unop(expr)
        if isinstance(expr, ast.BinOp):
            return self._lower_binop(expr)
        if isinstance(expr, ast.Call):
            return self._lower_call(expr)
        raise TypeError_(f"cannot lower {type(expr).__name__}", expr.line)

    def _lower_unop(self, expr: ast.UnOp) -> Operand:
        if expr.op == "!":
            cond = self._lower_condition(expr.operand)
            dest = self.builder.new_temp(BOOL)
            self.builder.emit(UnOp(dest, "!", cond, line=expr.line))
            return dest
        operand = self._lower_expr(expr.operand)
        dest = self.builder.new_temp(expr.type)
        self.builder.emit(UnOp(dest, expr.op, operand, line=expr.line))
        return dest

    def _lower_binop(self, expr: ast.BinOp) -> Operand:
        op = expr.op
        if op in ("&&", "||"):
            return self._lower_shortcircuit(expr)
        lhs = self._lower_expr(expr.lhs)
        rhs = self._lower_expr(expr.rhs)
        if op in ("+", "-", "*", "/", "%"):
            # Widen mixed int/float arithmetic.
            if isinstance(expr.type, FloatType):
                lhs = self._coerce(lhs, expr.lhs.type, FLOAT, expr.line)
                rhs = self._coerce(rhs, expr.rhs.type, FLOAT, expr.line)
            result_type: Type = expr.type
        elif op in ("<", "<=", ">", ">=", "==", "!="):
            if (
                expr.lhs.type is not None
                and expr.rhs.type is not None
                and expr.lhs.type.is_numeric()
                and expr.rhs.type.is_numeric()
                and expr.lhs.type != expr.rhs.type
            ):
                lhs = self._coerce(lhs, expr.lhs.type, FLOAT, expr.line)
                rhs = self._coerce(rhs, expr.rhs.type, FLOAT, expr.line)
            result_type = BOOL
        else:  # pragma: no cover - checker rejects others
            raise TypeError_(f"cannot lower operator {op}", expr.line)
        dest = self.builder.new_temp(result_type)
        self.builder.emit(
            BinOp(dest, op, lhs, rhs, result_type=result_type, line=expr.line)
        )
        return dest

    def _lower_shortcircuit(self, expr: ast.BinOp) -> Operand:
        dest = self.builder.new_temp(BOOL, hint="sc")
        rhs_bb = self.builder.new_block("sc.rhs")
        end_bb = self.builder.new_block("sc.end")
        lhs = self._lower_condition(expr.lhs)
        self.builder.emit(Mov(dest, lhs, line=expr.line))
        if expr.op == "&&":
            self.builder.emit(Branch(lhs, rhs_bb.name, end_bb.name, line=expr.line))
        else:
            self.builder.emit(Branch(lhs, end_bb.name, rhs_bb.name, line=expr.line))
        self.builder.set_block(rhs_bb)
        rhs = self._lower_condition(expr.rhs)
        self.builder.emit(Mov(dest, rhs, line=expr.line))
        self.builder.emit(Jump(end_bb.name, line=expr.line))
        self.builder.set_block(end_bb)
        return dest

    def _lower_call(self, expr: ast.Call) -> Optional[Operand]:
        args = [self._lower_expr(a) for a in expr.args]
        if is_builtin(expr.func):
            return self._lower_builtin(expr, args)
        sig = self.checked.functions[expr.func]
        coerced = [
            self._coerce(a, node.type, ptype, expr.line)
            for a, node, ptype in zip(args, expr.args, sig.param_types)
        ]
        dest = None
        if not isinstance(sig.return_type, VoidType):
            dest = self.builder.new_temp(sig.return_type, hint="r")
        self.builder.emit(Call(dest, expr.func, coerced, line=expr.line))
        return dest

    def _lower_builtin(self, expr: ast.Call, args: List[Operand]) -> Optional[Operand]:
        name = expr.func
        if name == "len":
            dest = self.builder.new_temp(INT, hint="n")
            self.builder.emit(ArrayLen(dest, args[0], line=expr.line))
            return dest
        if name == "print":
            self.builder.emit(CallBuiltin(None, "print", args, line=expr.line))
            return None
        # Math builtins widen int arguments to float where required.
        from repro.lang.builtins import BUILTINS

        builtin = BUILTINS[name]
        if builtin.param_types is not None:
            args = [
                self._coerce(a, node.type, ptype, expr.line)
                for a, node, ptype in zip(args, expr.args, builtin.param_types)
            ]
        dest = self.builder.new_temp(expr.type, hint="m")
        self.builder.emit(CallBuiltin(dest, name, args, line=expr.line))
        return dest

    # -- conditions and coercions -------------------------------------------------

    def _lower_condition(self, expr: ast.Expr) -> Operand:
        """Lower an expression in condition position to a bool operand."""
        value = self._lower_expr(expr)
        t = expr.type
        if isinstance(t, BoolType):
            return value
        dest = self.builder.new_temp(BOOL, hint="c")
        if t is not None and t.is_reference():
            zero: Operand = Const(None, t)
        else:
            zero = Const(0, INT)
        self.builder.emit(
            BinOp(dest, "!=", value, zero, result_type=BOOL, line=expr.line)
        )
        return dest

    def _coerce(
        self,
        value: Operand,
        source: Optional[Type],
        target: Optional[Type],
        line: int,
    ) -> Operand:
        """Insert an int→float widening when needed."""
        if (
            isinstance(target, FloatType)
            and isinstance(source, IntType)
        ):
            if isinstance(value, Const):
                return Const(float(value.value), FLOAT)
            dest = self.builder.new_temp(FLOAT, hint="w")
            self.builder.emit(UnOp(dest, "itof", value, line=line))
            return dest
        return value


def lower(checked: CheckedProgram) -> Module:
    """Lower a checked program to an IR module."""
    module = Module(structs=dict(checked.structs))
    for decl in checked.program.globals:
        module.globals[decl.name] = GlobalVar(
            name=decl.name,
            type=decl.var_type,
            init=_eval_global_init(decl),
        )
    for fdecl in checked.program.functions:
        lowering = _FuncLowering(checked, fdecl, label_prefix=fdecl.name)
        module.add_function(lowering.lower())
    return module


def _eval_global_init(decl: ast.GlobalDecl) -> object:
    """Globals may only have constant scalar initializers."""
    init = decl.init
    if init is None:
        return default_value(decl.var_type)
    if isinstance(init, ast.IntLit):
        if isinstance(decl.var_type, FloatType):
            return float(init.value)
        return init.value
    if isinstance(init, ast.FloatLit):
        return init.value
    if isinstance(init, ast.BoolLit):
        return init.value
    if isinstance(init, ast.NullLit):
        return None
    raise TypeError_(
        "global initializers must be literal constants", decl.line
    )
