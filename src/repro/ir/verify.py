"""IR structural verifier.

Run after lowering and after every transformation pass (outlining,
instrumentation) to catch malformed CFGs early.  Checks:

* every block ends in exactly one terminator, which is its last instruction;
* every branch/jump target exists;
* the entry block exists and has no predecessors inside the function;
* every used register is defined somewhere (parameter or instruction def) —
  a weak def-before-use check that still catches most rewriting bugs;
* loop metadata points at existing header blocks.
"""

from __future__ import annotations

from typing import List, Set

from repro.ir.function import Function, Module
from repro.ir.instructions import Reg


class VerificationError(Exception):
    """Raised when the IR is structurally malformed."""


def verify_function(func: Function) -> None:
    if func.entry not in func.blocks:
        raise VerificationError(f"{func.name}: missing entry block {func.entry!r}")

    defined: Set[Reg] = set(func.param_regs())
    for block in func.ordered_blocks():
        if not block.instrs:
            raise VerificationError(f"{func.name}/{block.name}: empty block")
        term = block.instrs[-1]
        if not term.is_terminator():
            raise VerificationError(
                f"{func.name}/{block.name}: does not end in a terminator"
            )
        for instr in block.instrs[:-1]:
            if instr.is_terminator():
                raise VerificationError(
                    f"{func.name}/{block.name}: terminator in block body: {instr}"
                )
        for target in block.successors():
            if target not in func.blocks:
                raise VerificationError(
                    f"{func.name}/{block.name}: branch to unknown block {target!r}"
                )
        for instr in block.instrs:
            defined.update(instr.defs())

    for block in func.ordered_blocks():
        for instr in block.instrs:
            for use in instr.uses():
                if use not in defined:
                    raise VerificationError(
                        f"{func.name}/{block.name}: use of undefined register "
                        f"{use} in {instr}"
                    )

    for label, meta in func.loops.items():
        if meta.header not in func.blocks:
            raise VerificationError(
                f"{func.name}: loop {label} header {meta.header!r} missing"
            )


def verify_module(module: Module) -> None:
    errors: List[str] = []
    for func in module.functions.values():
        try:
            verify_function(func)
        except VerificationError as exc:
            errors.append(str(exc))
    if errors:
        raise VerificationError("; ".join(errors))
