"""IR containers: basic blocks, functions and modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.ir.instructions import Branch, Instr, Jump, Reg, Ret
from repro.lang.types import StructDef, Type


@dataclass
class LoopInfoMeta:
    """Source-level metadata for a loop, keyed by its stable label."""

    label: str
    line: int
    #: Name of the loop's header block.
    header: str
    #: Source construct ("for" or "while").
    kind: str = "for"


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    def __init__(self, name: str):
        self.name = name
        self.instrs: List[Instr] = []

    @property
    def terminator(self) -> Optional[Instr]:
        if self.instrs and self.instrs[-1].is_terminator():
            return self.instrs[-1]
        return None

    def successors(self) -> List[str]:
        term = self.terminator
        if isinstance(term, Jump):
            return [term.target]
        if isinstance(term, Branch):
            if term.true_target == term.false_target:
                return [term.true_target]
            return [term.true_target, term.false_target]
        return []

    def body(self) -> List[Instr]:
        """Instructions excluding the terminator."""
        if self.terminator is not None:
            return self.instrs[:-1]
        return list(self.instrs)

    def append(self, instr: Instr) -> None:
        self.instrs.append(instr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BasicBlock({self.name}, {len(self.instrs)} instrs)"


class Function:
    """A function: parameter registers, typed registers and a CFG."""

    def __init__(self, name: str, params: List[Tuple[Reg, Type]], return_type: Type):
        self.name = name
        self.params = params
        self.return_type = return_type
        self.blocks: Dict[str, BasicBlock] = {}
        self.block_order: List[str] = []
        self.entry: str = ""
        #: Best-effort static types for registers (filled by lowering).
        self.reg_types: Dict[Reg, Type] = {}
        #: Source loops declared in this function, in lowering order.
        self.loops: Dict[str, LoopInfoMeta] = {}
        #: Declared commutative in the source (``commutative func ...``).
        #: The declaration is *checked*, never trusted: see
        #: repro.analysis.specs.check_annotations.
        self.commutative: bool = False

    def new_block(self, name: str) -> BasicBlock:
        if name in self.blocks:
            raise ValueError(f"duplicate block name {name!r} in {self.name}")
        block = BasicBlock(name)
        self.blocks[name] = block
        self.block_order.append(name)
        if not self.entry:
            self.entry = name
        return block

    def block(self, name: str) -> BasicBlock:
        return self.blocks[name]

    def ordered_blocks(self) -> List[BasicBlock]:
        return [self.blocks[n] for n in self.block_order]

    def instructions(self) -> Iterator[Instr]:
        for block in self.ordered_blocks():
            yield from block.instrs

    def predecessors(self) -> Dict[str, List[str]]:
        preds: Dict[str, List[str]] = {n: [] for n in self.block_order}
        for block in self.ordered_blocks():
            for succ in block.successors():
                preds[succ].append(block.name)
        return preds

    def remove_unreachable_blocks(self) -> None:
        """Drop blocks not reachable from the entry."""
        reached = set()
        stack = [self.entry]
        while stack:
            name = stack.pop()
            if name in reached:
                continue
            reached.add(name)
            stack.extend(self.blocks[name].successors())
        self.block_order = [n for n in self.block_order if n in reached]
        self.blocks = {n: b for n, b in self.blocks.items() if n in reached}
        self.loops = {
            label: meta for label, meta in self.loops.items() if meta.header in reached
        }

    def param_regs(self) -> List[Reg]:
        return [reg for reg, _ in self.params]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Function({self.name}, {len(self.blocks)} blocks)"


@dataclass
class GlobalVar:
    """A module-level variable."""

    name: str
    type: Type
    #: Constant initializer value (scalars only); references start as null.
    init: object = None


@dataclass
class Module:
    """A compiled MiniC program."""

    structs: Dict[str, StructDef] = field(default_factory=dict)
    globals: Dict[str, GlobalVar] = field(default_factory=dict)
    functions: Dict[str, Function] = field(default_factory=dict)

    def function(self, name: str) -> Function:
        return self.functions[name]

    def add_function(self, func: Function) -> None:
        if func.name in self.functions:
            raise ValueError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func

    def all_loop_labels(self) -> List[str]:
        labels: List[str] = []
        for func in self.functions.values():
            labels.extend(func.loops)
        return labels
