"""Three-address IR instruction set.

The IR is register-based and non-SSA.  Scalars live in virtual registers;
structs and arrays are heap objects referenced by register-held handles.
Global variables live in a module-level store and are accessed through
explicit ``LoadGlobal``/``StoreGlobal`` instructions, which makes every
memory access in a program syntactically identifiable — the property the
dependence-profiling baselines and DCA instrumentation rely on.

Every instruction exposes ``defs()``/``uses()`` (registers only) plus
``replace_uses``/``replace_defs`` for rewriting, which the outlining and
instrumentation passes in :mod:`repro.core` use heavily.
"""

from __future__ import annotations

import copy as _copy
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.lang.types import Type


@dataclass(frozen=True)
class Reg:
    """A virtual register."""

    name: str

    def __str__(self) -> str:
        return f"%{self.name}"

    def __hash__(self) -> int:
        # Regs key every dataflow set and def-use map; hashing the name
        # directly reuses the str object's cached hash instead of the
        # generated implementation's per-call field tuple.  Consistent
        # with the generated __eq__: equal iff names are equal.
        return hash(self.name)


@dataclass(frozen=True)
class Const:
    """An immediate constant (int, float, bool, string or null)."""

    value: object
    type: Optional[Type] = None

    def __str__(self) -> str:
        if self.value is None:
            return "null"
        return repr(self.value)


Operand = Union[Reg, Const]


def _fmt(op: Operand) -> str:
    return str(op)


class Instr:
    """Base class for all IR instructions."""

    __slots__ = ("line",)

    def __init__(self, line: int = 0):
        self.line = line

    # -- dataflow interface -------------------------------------------------

    def defs(self) -> List[Reg]:
        return []

    def uses(self) -> List[Reg]:
        return []

    def _use_operands(self) -> List[Operand]:
        """All operands in use position (constants included)."""
        return []

    def replace_uses(self, mapping: Dict[Reg, Operand]) -> None:
        """Substitute used registers according to ``mapping`` (in place)."""

    def replace_defs(self, mapping: Dict[Reg, Reg]) -> None:
        """Substitute defined registers according to ``mapping`` (in place)."""

    def clone(self) -> "Instr":
        return _copy.copy(self)

    def is_terminator(self) -> bool:
        return isinstance(self, (Jump, Branch, Ret))

    def is_memory_read(self) -> bool:
        return isinstance(self, (GetField, GetIndex, ArrayLen, LoadGlobal))

    def is_memory_write(self) -> bool:
        return isinstance(self, (SetField, SetIndex, StoreGlobal))

    def has_side_effects(self) -> bool:
        """Conservative: calls and memory writes."""
        return self.is_memory_write() or isinstance(
            self, (Call, CallBuiltin, Intrinsic)
        )

    @staticmethod
    def _subst(op: Operand, mapping: Dict[Reg, Operand]) -> Operand:
        if isinstance(op, Reg) and op in mapping:
            return mapping[op]
        return op


class Mov(Instr):
    __slots__ = ("dest", "src")

    def __init__(self, dest: Reg, src: Operand, line: int = 0):
        super().__init__(line)
        self.dest = dest
        self.src = src

    def defs(self) -> List[Reg]:
        return [self.dest]

    def uses(self) -> List[Reg]:
        return [self.src] if isinstance(self.src, Reg) else []

    def _use_operands(self) -> List[Operand]:
        return [self.src]

    def replace_uses(self, mapping: Dict[Reg, Operand]) -> None:
        self.src = self._subst(self.src, mapping)

    def replace_defs(self, mapping: Dict[Reg, Reg]) -> None:
        self.dest = mapping.get(self.dest, self.dest)

    def __str__(self) -> str:
        return f"{self.dest} = mov {_fmt(self.src)}"


class BinOp(Instr):
    """Arithmetic/comparison. ``result_type`` distinguishes int vs float ops."""

    __slots__ = ("dest", "op", "lhs", "rhs", "result_type")

    def __init__(
        self,
        dest: Reg,
        op: str,
        lhs: Operand,
        rhs: Operand,
        result_type: Optional[Type] = None,
        line: int = 0,
    ):
        super().__init__(line)
        self.dest = dest
        self.op = op
        self.lhs = lhs
        self.rhs = rhs
        self.result_type = result_type

    def defs(self) -> List[Reg]:
        return [self.dest]

    def uses(self) -> List[Reg]:
        return [o for o in (self.lhs, self.rhs) if isinstance(o, Reg)]

    def _use_operands(self) -> List[Operand]:
        return [self.lhs, self.rhs]

    def replace_uses(self, mapping: Dict[Reg, Operand]) -> None:
        self.lhs = self._subst(self.lhs, mapping)
        self.rhs = self._subst(self.rhs, mapping)

    def replace_defs(self, mapping: Dict[Reg, Reg]) -> None:
        self.dest = mapping.get(self.dest, self.dest)

    def __str__(self) -> str:
        return f"{self.dest} = {self.op} {_fmt(self.lhs)}, {_fmt(self.rhs)}"


class UnOp(Instr):
    __slots__ = ("dest", "op", "operand")

    def __init__(self, dest: Reg, op: str, operand: Operand, line: int = 0):
        super().__init__(line)
        self.dest = dest
        self.op = op
        self.operand = operand

    def defs(self) -> List[Reg]:
        return [self.dest]

    def uses(self) -> List[Reg]:
        return [self.operand] if isinstance(self.operand, Reg) else []

    def _use_operands(self) -> List[Operand]:
        return [self.operand]

    def replace_uses(self, mapping: Dict[Reg, Operand]) -> None:
        self.operand = self._subst(self.operand, mapping)

    def replace_defs(self, mapping: Dict[Reg, Reg]) -> None:
        self.dest = mapping.get(self.dest, self.dest)

    def __str__(self) -> str:
        return f"{self.dest} = {self.op} {_fmt(self.operand)}"


class NewStruct(Instr):
    __slots__ = ("dest", "struct_name")

    def __init__(self, dest: Reg, struct_name: str, line: int = 0):
        super().__init__(line)
        self.dest = dest
        self.struct_name = struct_name

    def defs(self) -> List[Reg]:
        return [self.dest]

    def replace_defs(self, mapping: Dict[Reg, Reg]) -> None:
        self.dest = mapping.get(self.dest, self.dest)

    def __str__(self) -> str:
        return f"{self.dest} = new {self.struct_name}"


class NewArray(Instr):
    __slots__ = ("dest", "elem_type", "length")

    def __init__(self, dest: Reg, elem_type: Type, length: Operand, line: int = 0):
        super().__init__(line)
        self.dest = dest
        self.elem_type = elem_type
        self.length = length

    def defs(self) -> List[Reg]:
        return [self.dest]

    def uses(self) -> List[Reg]:
        return [self.length] if isinstance(self.length, Reg) else []

    def _use_operands(self) -> List[Operand]:
        return [self.length]

    def replace_uses(self, mapping: Dict[Reg, Operand]) -> None:
        self.length = self._subst(self.length, mapping)

    def replace_defs(self, mapping: Dict[Reg, Reg]) -> None:
        self.dest = mapping.get(self.dest, self.dest)

    def __str__(self) -> str:
        return f"{self.dest} = newarray {self.elem_type}[{_fmt(self.length)}]"


class GetField(Instr):
    __slots__ = ("dest", "obj", "field")

    def __init__(self, dest: Reg, obj: Operand, field: str, line: int = 0):
        super().__init__(line)
        self.dest = dest
        self.obj = obj
        self.field = field

    def defs(self) -> List[Reg]:
        return [self.dest]

    def uses(self) -> List[Reg]:
        return [self.obj] if isinstance(self.obj, Reg) else []

    def _use_operands(self) -> List[Operand]:
        return [self.obj]

    def replace_uses(self, mapping: Dict[Reg, Operand]) -> None:
        self.obj = self._subst(self.obj, mapping)

    def replace_defs(self, mapping: Dict[Reg, Reg]) -> None:
        self.dest = mapping.get(self.dest, self.dest)

    def __str__(self) -> str:
        return f"{self.dest} = getfield {_fmt(self.obj)}.{self.field}"


class SetField(Instr):
    __slots__ = ("obj", "field", "value")

    def __init__(self, obj: Operand, field: str, value: Operand, line: int = 0):
        super().__init__(line)
        self.obj = obj
        self.field = field
        self.value = value

    def uses(self) -> List[Reg]:
        return [o for o in (self.obj, self.value) if isinstance(o, Reg)]

    def _use_operands(self) -> List[Operand]:
        return [self.obj, self.value]

    def replace_uses(self, mapping: Dict[Reg, Operand]) -> None:
        self.obj = self._subst(self.obj, mapping)
        self.value = self._subst(self.value, mapping)

    def __str__(self) -> str:
        return f"setfield {_fmt(self.obj)}.{self.field} = {_fmt(self.value)}"


class GetIndex(Instr):
    __slots__ = ("dest", "arr", "index")

    def __init__(self, dest: Reg, arr: Operand, index: Operand, line: int = 0):
        super().__init__(line)
        self.dest = dest
        self.arr = arr
        self.index = index

    def defs(self) -> List[Reg]:
        return [self.dest]

    def uses(self) -> List[Reg]:
        return [o for o in (self.arr, self.index) if isinstance(o, Reg)]

    def _use_operands(self) -> List[Operand]:
        return [self.arr, self.index]

    def replace_uses(self, mapping: Dict[Reg, Operand]) -> None:
        self.arr = self._subst(self.arr, mapping)
        self.index = self._subst(self.index, mapping)

    def replace_defs(self, mapping: Dict[Reg, Reg]) -> None:
        self.dest = mapping.get(self.dest, self.dest)

    def __str__(self) -> str:
        return f"{self.dest} = getindex {_fmt(self.arr)}[{_fmt(self.index)}]"


class SetIndex(Instr):
    __slots__ = ("arr", "index", "value")

    def __init__(self, arr: Operand, index: Operand, value: Operand, line: int = 0):
        super().__init__(line)
        self.arr = arr
        self.index = index
        self.value = value

    def uses(self) -> List[Reg]:
        return [o for o in (self.arr, self.index, self.value) if isinstance(o, Reg)]

    def _use_operands(self) -> List[Operand]:
        return [self.arr, self.index, self.value]

    def replace_uses(self, mapping: Dict[Reg, Operand]) -> None:
        self.arr = self._subst(self.arr, mapping)
        self.index = self._subst(self.index, mapping)
        self.value = self._subst(self.value, mapping)

    def __str__(self) -> str:
        return f"setindex {_fmt(self.arr)}[{_fmt(self.index)}] = {_fmt(self.value)}"


class ArrayLen(Instr):
    __slots__ = ("dest", "arr")

    def __init__(self, dest: Reg, arr: Operand, line: int = 0):
        super().__init__(line)
        self.dest = dest
        self.arr = arr

    def defs(self) -> List[Reg]:
        return [self.dest]

    def uses(self) -> List[Reg]:
        return [self.arr] if isinstance(self.arr, Reg) else []

    def _use_operands(self) -> List[Operand]:
        return [self.arr]

    def replace_uses(self, mapping: Dict[Reg, Operand]) -> None:
        self.arr = self._subst(self.arr, mapping)

    def replace_defs(self, mapping: Dict[Reg, Reg]) -> None:
        self.dest = mapping.get(self.dest, self.dest)

    def __str__(self) -> str:
        return f"{self.dest} = len {_fmt(self.arr)}"


class LoadGlobal(Instr):
    __slots__ = ("dest", "name")

    def __init__(self, dest: Reg, name: str, line: int = 0):
        super().__init__(line)
        self.dest = dest
        self.name = name

    def defs(self) -> List[Reg]:
        return [self.dest]

    def replace_defs(self, mapping: Dict[Reg, Reg]) -> None:
        self.dest = mapping.get(self.dest, self.dest)

    def __str__(self) -> str:
        return f"{self.dest} = loadglobal @{self.name}"


class StoreGlobal(Instr):
    __slots__ = ("name", "src")

    def __init__(self, name: str, src: Operand, line: int = 0):
        super().__init__(line)
        self.name = name
        self.src = src

    def uses(self) -> List[Reg]:
        return [self.src] if isinstance(self.src, Reg) else []

    def _use_operands(self) -> List[Operand]:
        return [self.src]

    def replace_uses(self, mapping: Dict[Reg, Operand]) -> None:
        self.src = self._subst(self.src, mapping)

    def __str__(self) -> str:
        return f"storeglobal @{self.name} = {_fmt(self.src)}"


class _CallBase(Instr):
    __slots__ = ("dest", "func", "args")

    def __init__(
        self, dest: Optional[Reg], func: str, args: List[Operand], line: int = 0
    ):
        super().__init__(line)
        self.dest = dest
        self.func = func
        self.args = list(args)

    def defs(self) -> List[Reg]:
        return [self.dest] if self.dest is not None else []

    def uses(self) -> List[Reg]:
        return [a for a in self.args if isinstance(a, Reg)]

    def _use_operands(self) -> List[Operand]:
        return list(self.args)

    def replace_uses(self, mapping: Dict[Reg, Operand]) -> None:
        self.args = [self._subst(a, mapping) for a in self.args]

    def replace_defs(self, mapping: Dict[Reg, Reg]) -> None:
        if self.dest is not None:
            self.dest = mapping.get(self.dest, self.dest)

    def clone(self) -> "Instr":
        new = _copy.copy(self)
        new.args = list(self.args)
        return new

    def _str(self, kw: str) -> str:
        args = ", ".join(_fmt(a) for a in self.args)
        if self.dest is not None:
            return f"{self.dest} = {kw} {self.func}({args})"
        return f"{kw} {self.func}({args})"


class Call(_CallBase):
    """Direct call to a user-defined function."""

    __slots__ = ()

    def __str__(self) -> str:
        return self._str("call")


class CallBuiltin(_CallBase):
    """Call to a language builtin (print, len, math)."""

    __slots__ = ()

    def __str__(self) -> str:
        return self._str("builtin")


class Intrinsic(_CallBase):
    """Call into the DCA runtime (``rt_*`` hooks inserted by instrumentation)."""

    __slots__ = ()

    def __str__(self) -> str:
        return self._str("intrinsic")


class Jump(Instr):
    __slots__ = ("target",)

    def __init__(self, target: str, line: int = 0):
        super().__init__(line)
        self.target = target

    def __str__(self) -> str:
        return f"jump {self.target}"


class Branch(Instr):
    """Conditional branch on the truthiness of ``cond``."""

    __slots__ = ("cond", "true_target", "false_target")

    def __init__(
        self, cond: Operand, true_target: str, false_target: str, line: int = 0
    ):
        super().__init__(line)
        self.cond = cond
        self.true_target = true_target
        self.false_target = false_target

    def uses(self) -> List[Reg]:
        return [self.cond] if isinstance(self.cond, Reg) else []

    def _use_operands(self) -> List[Operand]:
        return [self.cond]

    def replace_uses(self, mapping: Dict[Reg, Operand]) -> None:
        self.cond = self._subst(self.cond, mapping)

    def __str__(self) -> str:
        return f"branch {_fmt(self.cond)} ? {self.true_target} : {self.false_target}"


class Ret(Instr):
    __slots__ = ("value",)

    def __init__(self, value: Optional[Operand] = None, line: int = 0):
        super().__init__(line)
        self.value = value

    def uses(self) -> List[Reg]:
        return [self.value] if isinstance(self.value, Reg) else []

    def _use_operands(self) -> List[Operand]:
        return [] if self.value is None else [self.value]

    def replace_uses(self, mapping: Dict[Reg, Operand]) -> None:
        if self.value is not None:
            self.value = self._subst(self.value, mapping)

    def __str__(self) -> str:
        if self.value is None:
            return "ret"
        return f"ret {_fmt(self.value)}"
