"""Human-readable IR dumps, useful for debugging and golden tests."""

from __future__ import annotations

from typing import List

from repro.ir.function import Function, Module


def format_function(func: Function) -> str:
    lines: List[str] = []
    params = ", ".join(f"{reg}: {t}" for reg, t in func.params)
    prefix = "commutative " if func.commutative else ""
    lines.append(f"{prefix}func {func.name}({params}) -> {func.return_type} {{")
    loop_headers = {meta.header: label for label, meta in func.loops.items()}
    for block in func.ordered_blocks():
        suffix = ""
        if block.name in loop_headers:
            suffix = f"    ; loop {loop_headers[block.name]}"
        lines.append(f"{block.name}:{suffix}")
        for instr in block.instrs:
            lines.append(f"    {instr}")
    lines.append("}")
    return "\n".join(lines)


def format_module(module: Module) -> str:
    parts: List[str] = []
    for sdef in module.structs.values():
        fields = "; ".join(f"{t} {n}" for n, t in sdef.fields.items())
        parts.append(f"struct {sdef.name} {{ {fields} }}")
    for gvar in module.globals.values():
        parts.append(f"global {gvar.type} @{gvar.name} = {gvar.init!r}")
    for func in module.functions.values():
        parts.append(format_function(func))
    return "\n\n".join(parts)
