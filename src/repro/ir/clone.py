"""Deep-cloning of IR containers.

DCA builds several instrumented variants of the same program (an
observe-only golden variant plus one test variant per candidate loop), so
transformations always run on a fresh clone of the pristine module.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ir.function import BasicBlock, Function, GlobalVar, LoopInfoMeta, Module


def clone_function(func: Function) -> Function:
    new = Function(func.name, list(func.params), func.return_type)
    new.reg_types = dict(func.reg_types)
    new.commutative = func.commutative
    new.loops = {
        label: LoopInfoMeta(meta.label, meta.line, meta.header, meta.kind)
        for label, meta in func.loops.items()
    }
    for name in func.block_order:
        block = func.blocks[name]
        new_block = new.new_block(name)
        for instr in block.instrs:
            new_block.append(instr.clone())
    new.entry = func.entry
    return new


def clone_module(module: Module) -> Module:
    new = Module(
        structs=dict(module.structs),
        globals={
            name: GlobalVar(gv.name, gv.type, gv.init)
            for name, gv in module.globals.items()
        },
    )
    for func in module.functions.values():
        new.add_function(clone_function(func))
    return new


def rename_blocks(func: Function, mapping: Optional[Dict[str, str]] = None) -> None:
    """Utility for tests: consistently rename blocks (and branch targets)."""
    if not mapping:
        return
    from repro.ir.instructions import Branch, Jump

    func.blocks = {mapping.get(n, n): b for n, b in func.blocks.items()}
    func.block_order = [mapping.get(n, n) for n in func.block_order]
    func.entry = mapping.get(func.entry, func.entry)
    for block in func.blocks.values():
        block.name = mapping.get(block.name, block.name)
        term = block.terminator
        if isinstance(term, Jump):
            term.target = mapping.get(term.target, term.target)
        elif isinstance(term, Branch):
            term.true_target = mapping.get(term.true_target, term.true_target)
            term.false_target = mapping.get(term.false_target, term.false_target)
    for meta in func.loops.values():
        meta.header = mapping.get(meta.header, meta.header)
