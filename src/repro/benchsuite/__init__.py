"""Benchmark suite: NPB-style kernels and PLDS programs with metadata."""

from repro.benchsuite.base import Benchmark, Table2Info
from repro.benchsuite.npb import NPB_BENCHMARKS
from repro.benchsuite.plds import FIG5_BENCHMARKS, PLDS_BENCHMARKS

ALL_BENCHMARKS = tuple(NPB_BENCHMARKS) + tuple(PLDS_BENCHMARKS)


def by_name(name: str) -> Benchmark:
    for bench in ALL_BENCHMARKS:
        if bench.name == name:
            return bench
    raise KeyError(f"no benchmark named {name!r}")


__all__ = [
    "ALL_BENCHMARKS",
    "Benchmark",
    "FIG5_BENCHMARKS",
    "NPB_BENCHMARKS",
    "PLDS_BENCHMARKS",
    "Table2Info",
    "by_name",
]
