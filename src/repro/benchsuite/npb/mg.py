"""MG — Multigrid-style smoothing with V-cycle restriction/prolongation.

Jacobi smoothing sweeps (parallel maps over distinct read/write arrays),
restriction and prolongation between grid levels, plus MG's quirks from
the paper (§V-C1): nested loops containing I/O (excluded by DCA's
selection step) and loops the workload never exercises.
"""

from repro.benchsuite.base import Benchmark

SOURCE = """
// MG: two-level multigrid smoothing on a 1-D grid.
int NF = 96;
int NC = 48;
int DEBUG = 0;

func void main() {
  float[] u = new float[96];
  float[] v = new float[96];
  float[] rhs = new float[96];
  float[] cu = new float[48];
  float[] crhs = new float[48];

  // L0: setup (map).
  for (int i = 0; i < 96; i = i + 1) {
    u[i] = 0.0;
    rhs[i] = sin(to_float(i) * 0.21);
  }

  // L1: V-cycle iterations (sequential).
  for (int cyc = 0; cyc < 3; cyc = cyc + 1) {
    // L2: Jacobi smoothing into v (stencil map, disjoint arrays).
    for (int i = 1; i < 95; i = i + 1) {
      v[i] = (u[i - 1] + u[i + 1] + rhs[i]) * 0.5;
    }
    // L3: copy back (map).
    for (int i = 1; i < 95; i = i + 1) {
      u[i] = v[i];
    }
    // L4: restriction to the coarse grid (strided gather map).
    for (int c = 1; c < 47; c = c + 1) {
      crhs[c] = rhs[2 * c] - u[2 * c] + 0.25 * (u[2 * c - 1] + u[2 * c + 1]);
      cu[c] = 0.0;
    }
    // L5: coarse smoothing — Gauss-Seidel (serial recurrence).
    for (int c = 1; c < 47; c = c + 1) {
      cu[c] = (cu[c - 1] + crhs[c]) * 0.6;
    }
    // L6: prolongation back to the fine grid (strided scatter map).
    for (int c = 1; c < 47; c = c + 1) {
      u[2 * c] = u[2 * c] + cu[c];
      u[2 * c + 1] = u[2 * c + 1] + 0.5 * cu[c];
    }
    // L7: debug trace — I/O inside a nested loop (DCA excludes it).
    if (DEBUG > 0) {
      for (int i = 0; i < 96; i = i + 1) {
        print("u", i, u[i]);
      }
    }
  }

  // L8: residual norm (reduction).
  float rnorm = 0.0;
  for (int i = 1; i < 95; i = i + 1) {
    float res = rhs[i] - (u[i] - 0.5 * (u[i - 1] + u[i + 1]));
    rnorm = rnorm + res * res;
  }
  // L9: not exercised under the default workload (DEBUG == 0).
  float extra = 0.0;
  for (int i = 0; i < DEBUG; i = i + 1) {
    extra = extra + u[i];
  }
  // L10: max residual location (conditional max).
  float umax = -1000000.0;
  for (int i = 0; i < 96; i = i + 1) {
    if (u[i] > umax) { umax = u[i]; }
  }
  print("MG", rnorm, umax, extra, u[48]);
}
"""

MG = Benchmark(
    name="MG",
    suite="npb",
    source=SOURCE,
    description="Two-level multigrid smoothing",
    ground_truth={
        "main.L0": True,
        "main.L1": False,  # V-cycles sequential
        "main.L2": True,
        "main.L3": True,
        "main.L4": True,
        "main.L5": False,  # Gauss-Seidel
        "main.L6": True,
        "main.L7": True,   # parallel, but contains I/O (excluded by DCA)
        "main.L8": True,
        "main.L9": True,   # trivially parallel, never exercised
        "main.L10": True,
    },
    expert_loops=["main.L2", "main.L3", "main.L4", "main.L6", "main.L8"],
    expert_extra_fraction=0.3,
)
