"""UA — Unstructured Adaptive mesh kernel.

UA's signature is irregular, indirection-heavy loops: element-to-node
gathers/scatters through mesh index arrays, coloring-based disjoint
updates, and adaptive refinement bookkeeping.  Static subscript analysis
is blind here (paper Table III: combined static 44% vs DCA 97%), while
profiling shows the accesses are disjoint.
"""

from repro.benchsuite.base import Benchmark

SOURCE = """
// UA: unstructured mesh smoothing with indirection arrays.
int NELEM = 60;
int NNODE = 64;

func void main() {
  int[] en0 = new int[60];
  int[] en1 = new int[60];
  float[] node = new float[64];
  float[] elem = new float[60];
  float[] flux = new float[60];
  int[] color = new int[60];

  // L0: build element-to-node connectivity (affine writes, disjoint).
  for (int e = 0; e < 60; e = e + 1) {
    en0[e] = e % 16;
    en1[e] = (e * 7 + 3) % 64;
    color[e] = e % 2;
  }
  // L1: node field init (map).
  for (int n = 0; n < 64; n = n + 1) {
    node[n] = sin(to_float(n) * 0.4);
  }

  // L2: smoothing passes (sequential: pass-dependent boundary kick).
  for (int pass = 0; pass < 3; pass = pass + 1) {
    node[0] = node[0] * 0.9 + to_float(pass) * 0.02 + 0.005;
    // L3: element gather — indirect reads, disjoint writes (parallel,
    // beyond static subscript analysis).
    for (int e = 0; e < 60; e = e + 1) {
      elem[e] = 0.5 * (node[en0[e]] + node[en1[e]]);
    }
    // L4: flux with conditional control flow (parallel).
    for (int e = 0; e < 60; e = e + 1) {
      if (elem[e] > 0.0) {
        flux[e] = elem[e] * 0.9;
      } else {
        flux[e] = elem[e] * 1.1;
      }
    }
    // L5: scatter to nodes through en0 — colliding indices (elements
    // sharing a node): a genuine cross-iteration dependence unless
    // treated as a histogram-style atomic update.
    for (int e = 0; e < 60; e = e + 1) {
      node[en0[e]] += flux[e] * 0.05;
    }
    // L6: even-color scatter through en1 — collision-free by coloring
    // under this mesh (dynamically disjoint; statics cannot prove it).
    for (int e = 0; e < 60; e = e + 2) {
      node[en1[e]] = node[en1[e]] * 0.999;
    }
  }

  // L7: adaptive refinement marking (map with conditional).
  int[] refine = new int[60];
  for (int e = 0; e < 60; e = e + 1) {
    if (flux[e] > 0.4) {
      refine[e] = 1;
    } else {
      refine[e] = 0;
    }
  }
  // L8: refinement count (reduction).
  int nref = 0;
  for (int e = 0; e < 60; e = e + 1) {
    nref = nref + refine[e];
  }
  // L9: compaction of refined element ids (cursor recurrence, serial).
  int[] reflist = new int[60];
  int cur = 0;
  for (int e = 0; e < 60; e = e + 1) {
    if (refine[e] == 1) {
      reflist[cur] = e;
      cur = cur + 1;
    }
  }
  // L10: node norm (reduction).
  float nnorm = 0.0;
  for (int n = 0; n < 64; n = n + 1) {
    nnorm = nnorm + node[n] * node[n];
  }
  // L11: element max (conditional max reduction).
  float emax = -1000000.0;
  for (int e = 0; e < 60; e = e + 1) {
    if (elem[e] > emax) { emax = elem[e]; }
  }
  print("UA", nref, nnorm, emax, cur, reflist[0]);
}
"""

UA = Benchmark(
    name="UA",
    suite="npb",
    source=SOURCE,
    description="Unstructured adaptive mesh smoothing",
    ground_truth={
        "main.L0": True,
        "main.L1": True,
        "main.L2": False,  # smoothing passes sequential
        "main.L3": True,   # indirect gather, disjoint writes
        "main.L4": True,
        "main.L5": True,   # scatter-add: parallel with atomics (histogram)
        "main.L6": True,   # color-disjoint scatter
        "main.L7": True,
        "main.L8": True,
        "main.L9": False,  # compaction cursor
        "main.L10": True,
        "main.L11": True,
    },
    expert_loops=["main.L3", "main.L4", "main.L5", "main.L6", "main.L10", "main.L8"],
    expert_extra_fraction=0.2,
)
