"""CG — Conjugate Gradient (sparse matrix-vector products + dot products).

Sparse matvec rows are independent (gather through CSR indices — beyond
static subscript analysis, found by the dynamic tools and DCA); dot
products are reductions; the solver's vector updates are maps; the
iteration loop itself and the CSR construction carry true dependences.
CG in the paper has a comparatively high share of loops nobody detects.
"""

from repro.benchsuite.base import Benchmark

SOURCE = """
// CG: conjugate-gradient style iterations on a sparse banded matrix.
int N = 64;
int NNZ = 192;

func void main() {
  int[] rowptr = new int[65];
  int[] colidx = new int[192];
  float[] aval = new float[192];
  float[] x = new float[64];
  float[] r = new float[64];
  float[] p = new float[64];
  float[] q = new float[64];

  // L0: CSR construction — running nonzero cursor (serial).
  int pos = 0;
  for (int i = 0; i < 64; i = i + 1) {
    rowptr[i] = pos;
    colidx[pos] = i; aval[pos] = 4.0; pos = pos + 1;
    colidx[pos] = (i + 1) % 64; aval[pos] = -1.0; pos = pos + 1;
    if (i % 2 == 0) {
      colidx[pos] = (i + 63) % 64; aval[pos] = -1.0; pos = pos + 1;
    }
  }
  rowptr[64] = pos;

  // L1: initialize vectors (map).
  for (int i = 0; i < 64; i = i + 1) {
    x[i] = 0.0;
    r[i] = 1.0 + to_float(i % 7) * 0.25;
    p[i] = r[i];
  }

  float rho = 0.0;
  // L2: initial dot product (reduction).
  for (int i = 0; i < 64; i = i + 1) {
    rho = rho + r[i] * r[i];
  }

  // L3: CG iterations — each depends on the previous (serial).
  for (int it = 0; it < 3; it = it + 1) {
    // L4: sparse matvec q = A*p — independent rows, indirect gather.
    for (int i = 0; i < 64; i = i + 1) {
      float sum = 0.0;
      // L5: row accumulation (reduction over the row's nonzeros).
      for (int e = rowptr[i]; e < rowptr[i + 1]; e = e + 1) {
        sum = sum + aval[e] * p[colidx[e]];
      }
      q[i] = sum;
    }
    float dpq = 0.0;
    // L6: dot product p.q (reduction).
    for (int i = 0; i < 64; i = i + 1) {
      dpq = dpq + p[i] * q[i];
    }
    // Step-dependent damping: iterations are genuinely ordered.
    float alpha = rho / (dpq + 0.000001) * (1.0 - 0.05 * to_float(it));
    float rho_new = 0.0;
    // L7: vector update + residual reduction.
    for (int i = 0; i < 64; i = i + 1) {
      x[i] = x[i] + alpha * p[i];
      r[i] = r[i] - alpha * q[i];
      rho_new = rho_new + r[i] * r[i];
    }
    float beta = rho_new / (rho + 0.000001);
    // L8: direction update (map using scalar beta).
    for (int i = 0; i < 64; i = i + 1) {
      p[i] = r[i] + beta * p[i];
    }
    rho = rho_new;
  }

  // L9: solution norm (reduction).
  float xnorm = 0.0;
  for (int i = 0; i < 64; i = i + 1) {
    xnorm = xnorm + x[i] * x[i];
  }
  // L10: smoothing sweep with loop-carried stencil (serial Gauss-Seidel).
  for (int i = 1; i < 64; i = i + 1) {
    x[i] = (x[i] + x[i - 1]) * 0.5;
  }
  print("CG", rho, xnorm, x[0], x[63]);
}
"""

CG = Benchmark(
    name="CG",
    suite="npb",
    source=SOURCE,
    description="Conjugate gradient with sparse matvec",
    ground_truth={
        "main.L0": False,  # CSR cursor recurrence
        "main.L1": True,
        "main.L2": True,
        "main.L3": False,  # solver iterations are sequential
        "main.L4": True,   # independent sparse rows
        "main.L5": True,   # row reduction
        "main.L6": True,
        "main.L7": True,
        "main.L8": True,
        "main.L9": True,
        "main.L10": False,  # Gauss-Seidel recurrence
    },
    expert_loops=["main.L4", "main.L6", "main.L7", "main.L8", "main.L2", "main.L9"],
    expert_extra_fraction=0.25,
)
