"""DC — Data Cube: aggregation views over a synthetic fact table.

DC is the paper's I/O-bound outlier: it emits every aggregate view row
(modelled by ``print`` inside the view loops), so most loops are excluded
from DCA's candidate set (§IV-E) and parallelization buys nothing
(Fig. 6: DC ≈ 1×).  Only the in-memory preparation loops are detectable.
"""

from repro.benchsuite.base import Benchmark

SOURCE = """
// DC: group-by aggregations over a synthetic fact table, views printed.
int NROWS = 160;
int NDIM0 = 8;
int NDIM1 = 6;

func int mix(int s) {
  int v = (s * 1664525 + 1013904223) % 2147483648;
  if (v < 0) { return -v; }
  return v;
}

func void main() {
  int[] d0 = new int[160];
  int[] d1 = new int[160];
  int[] measure = new int[160];

  // L0: synthesize the fact table (seed recurrence, serial).
  int seed = 20071003;
  for (int r = 0; r < 160; r = r + 1) {
    seed = mix(seed);
    d0[r] = seed % 8;
    seed = mix(seed);
    d1[r] = seed % 6;
    measure[r] = (d0[r] + 1) * (d1[r] + 2);
  }

  // L1: view (d0) — group-by aggregation (histogram).
  int[] view0 = new int[8];
  for (int r = 0; r < 160; r = r + 1) {
    view0[d0[r]] += measure[r];
  }
  // L2: view (d1) — group-by aggregation (histogram).
  int[] view1 = new int[6];
  for (int r = 0; r < 160; r = r + 1) {
    view1[d1[r]] += measure[r];
  }
  // L3: view (d0,d1) — flattened 2-D histogram.
  int[] view01 = new int[48];
  for (int r = 0; r < 160; r = r + 1) {
    view01[d0[r] * 6 + d1[r]] += measure[r];
  }

  // L4: emit view (d0) — I/O loop, excluded from DCA candidates.
  for (int k = 0; k < 8; k = k + 1) {
    print("v0", k, view0[k]);
  }
  // L5: emit view (d1) — I/O loop.
  for (int k = 0; k < 6; k = k + 1) {
    print("v1", k, view1[k]);
  }
  // L6: emit the cube — nested I/O loops (L7 inner).
  for (int a = 0; a < 8; a = a + 1) {
    for (int b = 0; b < 6; b = b + 1) {
      print("v01", a, b, view01[a * 6 + b]);
    }
  }
  // L8: grand total (reduction).
  int total = 0;
  for (int k = 0; k < 48; k = k + 1) {
    total = total + view01[k];
  }
  print("DC", total);
}
"""

DC = Benchmark(
    name="DC",
    suite="npb",
    source=SOURCE,
    description="Data-cube aggregation views with per-row output",
    ground_truth={
        "main.L0": False,  # seed recurrence
        "main.L1": True,   # histogram
        "main.L2": True,
        "main.L3": True,
        "main.L4": True,   # parallelizable in principle, but I/O-ordered
        "main.L5": True,
        "main.L6": True,
        "main.L7": True,
        "main.L8": True,
    },
    expert_loops=["main.L1", "main.L2", "main.L3"],
    expert_extra_fraction=0.4,
)
