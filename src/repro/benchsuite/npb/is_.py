"""IS — Integer Sort (bucket/counting sort).

Histogram construction (key counting), a prefix-sum rank computation
(inherently serial), and a scatter phase writing each key to its rank.
The histogram is IDIOMS/DiscoPoP territory; the scatter has disjoint but
non-affine targets, so only the dynamic tools and DCA see it is parallel.
"""

from repro.benchsuite.base import Benchmark

SOURCE = """
// IS: counting sort of pseudo-random keys.
int NKEYS = 256;
int MAXKEY = 64;

func int next_key(int s) {
  int v = (s * 69069 + 1327217885) % 2147483648;
  if (v < 0) { return -v; }
  return v;
}

func void main() {
  int[] keys = new int[256];
  int[] hist = new int[64];
  int[] rank = new int[64];
  int[] sorted = new int[256];

  // L0: key generation — seed recurrence (serial).
  int seed = 314159265;
  for (int i = 0; i < 256; i = i + 1) {
    seed = next_key(seed);
    keys[i] = seed % 64;
  }
  // L1: clear histogram (map).
  for (int k = 0; k < 64; k = k + 1) {
    hist[k] = 0;
  }
  // L2: key counting — histogram update.
  for (int i = 0; i < 256; i = i + 1) {
    hist[keys[i]] += 1;
  }
  // L3: exclusive prefix sum of ranks (serial recurrence).
  int run = 0;
  for (int k = 0; k < 64; k = k + 1) {
    rank[k] = run;
    run = run + hist[k];
  }
  // L4: scatter each key to its final position — disjoint writes through
  // a dynamically updated cursor array (defeats static analysis; the
  // per-iteration target depends on the mutated cursor, so it is a
  // genuine cross-iteration dependence chain per bucket).
  int[] cursor = new int[64];
  for (int k = 0; k < 64; k = k + 1) {
    cursor[k] = rank[k];
  }
  for (int i = 0; i < 256; i = i + 1) {
    int key = keys[i];
    sorted[cursor[key]] = key;
    cursor[key] += 1;
  }
  // L6: verification — count in-order adjacent pairs (reduction).
  int ordered = 0;
  for (int i = 1; i < 256; i = i + 1) {
    if (sorted[i - 1] <= sorted[i]) {
      ordered += 1;
    }
  }
  // L7: checksum of histogram (reduction with pure call).
  int hsum = 0;
  for (int k = 0; k < 64; k = k + 1) {
    hsum = hsum + hist[k] * (k + 1);
  }
  print("IS", ordered, hsum, sorted[0], sorted[255], rank[63]);
}
"""

IS = Benchmark(
    name="IS",
    suite="npb",
    source=SOURCE,
    description="Integer counting sort",
    ground_truth={
        "main.L0": False,  # RNG seed recurrence feeding the key array
        "main.L1": True,   # map
        "main.L2": True,   # histogram (parallel with atomics)
        "main.L3": False,  # prefix sum
        "main.L4": True,   # cursor init map
        # L5 writes each key's own value into its bucket region: any order
        # yields identical memory (parallelizable with atomic fetch-add on
        # the cursors) — commutative despite the dependence chain.
        "main.L5": True,
        "main.L6": True,   # reduction
        "main.L7": True,   # reduction
    },
    expert_loops=["main.L2", "main.L6", "main.L7"],
    expert_extra_fraction=0.35,
)
