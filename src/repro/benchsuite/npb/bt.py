"""BT — Block Tridiagonal solver sweep.

Dense 5-point line relaxations in x/y directions on a flattened 2-D grid,
with per-line tridiagonal forward/back substitutions (serial inner
recurrences inside parallel outer line loops) and helper functions for the
flux computation (defeats SCoP tools; the paper credits DCA's BT score to
loops "spanning many lines of code, containing function calls").
"""

from repro.benchsuite.base import Benchmark

SOURCE = """
// BT: alternating-direction line solver on an NxN grid (flattened).
int N = 22;

func float flux(float a, float b, float c) {
  return 0.25 * (a + b) - 0.125 * c;
}

func void main() {
  float[] u = new float[484];
  float[] rhsv = new float[484];
  float[] tmp = new float[484];

  // L0: initialize grid (2-D map via flattening).
  for (int i = 0; i < 22; i = i + 1) {
    // L1: inner column init.
    for (int j = 0; j < 22; j = j + 1) {
      u[i * 22 + j] = sin(to_float(i) * 0.3) * cos(to_float(j) * 0.2);
      rhsv[i * 22 + j] = 0.01 * to_float(i + j);
    }
  }

  // L2: time steps (sequential: step-dependent forcing).
  for (int step = 0; step < 2; step = step + 1) {
    rhsv[23] = rhsv[23] * 0.9 + to_float(step) * 0.01 + 0.003;
    // L3: x-direction line solve — independent lines with helper calls.
    for (int i = 1; i < 21; i = i + 1) {
      // L4: forward elimination along the line (serial recurrence).
      for (int j = 1; j < 21; j = j + 1) {
        tmp[i * 22 + j] = flux(u[i * 22 + j - 1], u[i * 22 + j + 1],
                               u[i * 22 + j])
                        + 0.4 * tmp[i * 22 + j - 1] + rhsv[i * 22 + j];
      }
      // L5: back substitution (serial recurrence, reverse order).
      for (int j = 19; j > 0; j = j - 1) {
        tmp[i * 22 + j] = tmp[i * 22 + j] - 0.2 * tmp[i * 22 + j + 1];
      }
    }
    // L6: y-direction update — independent columns with helper calls.
    for (int j = 1; j < 21; j = j + 1) {
      // L7: column sweep reading tmp, writing u (map per cell).
      for (int i = 1; i < 21; i = i + 1) {
        u[i * 22 + j] = u[i * 22 + j]
                      + flux(tmp[(i - 1) * 22 + j], tmp[(i + 1) * 22 + j],
                             tmp[i * 22 + j]);
      }
    }
    // L8: boundary condition refresh (map over the rim).
    for (int i = 0; i < 22; i = i + 1) {
      u[i * 22] = u[i * 22 + 1] * 0.5;
      u[i * 22 + 21] = u[i * 22 + 20] * 0.5;
    }
  }

  // L9: solution norms (reductions).
  float norm = 0.0;
  float amax = -1000000.0;
  for (int k = 0; k < 484; k = k + 1) {
    norm = norm + u[k] * u[k];
    if (u[k] > amax) { amax = u[k]; }
  }
  print("BT", norm, amax, u[23], tmp[23]);
}
"""

BT = Benchmark(
    name="BT",
    suite="npb",
    source=SOURCE,
    description="Alternating-direction block line solver",
    ground_truth={
        "main.L0": True,
        "main.L1": True,
        "main.L2": False,  # time stepping
        "main.L3": True,   # independent lines
        "main.L4": False,  # forward elimination recurrence
        "main.L5": False,  # back substitution recurrence
        "main.L6": True,   # independent columns
        "main.L7": True,
        "main.L8": True,
        "main.L9": True,
    },
    expert_loops=["main.L3", "main.L6", "main.L8", "main.L9", "main.L0"],
    expert_extra_fraction=0.0,
)
