"""MiniC ports of the ten NPB-style kernels (paper Tables I/III/IV)."""

from repro.benchsuite.npb.bt import BT
from repro.benchsuite.npb.cg import CG
from repro.benchsuite.npb.dc import DC
from repro.benchsuite.npb.ep import EP
from repro.benchsuite.npb.ft import FT
from repro.benchsuite.npb.is_ import IS
from repro.benchsuite.npb.lu import LU
from repro.benchsuite.npb.mg import MG
from repro.benchsuite.npb.sp import SP
from repro.benchsuite.npb.ua import UA

NPB_BENCHMARKS = (BT, CG, DC, EP, FT, IS, LU, MG, SP, UA)

__all__ = ["BT", "CG", "DC", "EP", "FT", "IS", "LU", "MG", "NPB_BENCHMARKS", "SP", "UA"]
