"""SP — Scalar Pentadiagonal solver sweep.

Like BT but with scalar (call-free) loop bodies: wide 5-point stencil
maps, per-direction relaxations, and reductions.  SP has the highest
DCA detection share in the paper (93%) and a solid speedup (6.1×).
"""

from repro.benchsuite.base import Benchmark

SOURCE = """
// SP: pentadiagonal relaxation sweeps on a flattened grid.
int N = 24;

func void main() {
  float[] u = new float[576];
  float[] v = new float[576];
  float[] w = new float[576];

  // L0/L1: grid initialization (nested maps).
  for (int i = 0; i < 24; i = i + 1) {
    for (int j = 0; j < 24; j = j + 1) {
      u[i * 24 + j] = 1.0 / to_float(1 + i + j);
      v[i * 24 + j] = 0.0;
      w[i * 24 + j] = 0.02 * to_float(i - j);
    }
  }

  // L2: relaxation steps (sequential: step-dependent forcing).
  for (int s = 0; s < 2; s = s + 1) {
    w[50] = w[50] * 0.8 + to_float(s) * 0.05 + 0.01;
    // L3/L4: pentadiagonal x-sweep into v (disjoint stencil map).
    for (int i = 2; i < 22; i = i + 1) {
      for (int j = 2; j < 22; j = j + 1) {
        v[i * 24 + j] = 0.4 * u[i * 24 + j]
                      + 0.2 * (u[i * 24 + j - 1] + u[i * 24 + j + 1])
                      + 0.1 * (u[i * 24 + j - 2] + u[i * 24 + j + 2]);
      }
    }
    // L5/L6: y-sweep back into u (disjoint stencil map).
    for (int i = 2; i < 22; i = i + 1) {
      for (int j = 2; j < 22; j = j + 1) {
        u[i * 24 + j] = 0.4 * v[i * 24 + j]
                      + 0.3 * (v[(i - 1) * 24 + j] + v[(i + 1) * 24 + j])
                      + w[i * 24 + j] * 0.01;
      }
    }
    // L7: line-wise running damping (serial per grid, carried scalar).
    float damp = 1.0;
    for (int k = 48; k < 528; k = k + 1) {
      damp = damp * 0.999;
      u[k] = u[k] * damp;
    }
  }

  // L8: energy reduction.
  float energy = 0.0;
  for (int k = 0; k < 576; k = k + 1) {
    energy = energy + u[k] * u[k];
  }
  // L9: column sums (outer parallel, inner reduction).
  float colchk = 0.0;
  for (int j = 0; j < 24; j = j + 1) {
    float cs = 0.0;
    // L10: per-column reduction.
    for (int i = 0; i < 24; i = i + 1) {
      cs = cs + u[i * 24 + j];
    }
    colchk = colchk + cs * to_float(j % 3);
  }
  print("SP", energy, colchk, u[50], v[50]);
}
"""

SP = Benchmark(
    name="SP",
    suite="npb",
    source=SOURCE,
    description="Scalar pentadiagonal relaxation",
    ground_truth={
        "main.L0": True,
        "main.L1": True,
        "main.L2": False,  # relaxation steps sequential
        "main.L3": True,
        "main.L4": True,
        "main.L5": True,
        "main.L6": True,
        "main.L7": False,  # multiplicative damping recurrence
        "main.L8": True,
        "main.L9": True,
        "main.L10": True,
    },
    expert_loops=["main.L3", "main.L5", "main.L8", "main.L9", "main.L0"],
    expert_extra_fraction=0.0,
)
