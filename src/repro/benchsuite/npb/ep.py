"""EP — Embarrassingly Parallel (pseudo-random trial tallies).

A scaled-down analogue of NPB EP: a hot two-level loop nest evaluates an
integral via pseudo-random trials.  The outer trial loop is a floating
point + histogram reduction (paper §V-C2: parallelizing it yields EP's
headline near-linear speedup); the inner pair-generation loop carries the
RNG seed and is inherently serial.
"""

from repro.benchsuite.base import Benchmark

SOURCE = """
// EP: integral evaluation via pseudo-random trials.
int NK = 144;      // number of trials (outer parallel loop)
int NQ = 10;       // tally bins

func int lcg(int s) {
  int v = (s * 1103515245 + 12345) % 2147483648;
  if (v < 0) { return -v; }
  return v;
}

func float to_unit(int s) {
  return to_float(s % 1000000) / 1000000.0;
}

func void main() {
  float[] q = new float[10];
  float[] gauss = new float[144];
  // L0: tally initialization (simple affine map).
  for (int l = 0; l < 10; l = l + 1) {
    q[l] = 0.0;
  }
  float sx = 0.0;
  float sy = 0.0;
  // L1: hot trial loop — float reductions + tally histogram.
  for (int k = 0; k < 144; k = k + 1) {
    int seed = 271828183 + k * 2654435761;
    float tx = 0.0;
    float ty = 0.0;
    int accepted = 0;
    // L2: pair generation — RNG seed carried across iterations (serial).
    for (int j = 0; j < 24; j = j + 1) {
      seed = lcg(seed);
      float x = 2.0 * to_unit(seed) - 1.0;
      seed = lcg(seed);
      float y = 2.0 * to_unit(seed) - 1.0;
      float t = x * x + y * y;
      if (t <= 1.0) {
        float f = sqrt(-2.0 * log(t + 0.0000001) / (t + 0.0000001));
        tx = tx + x * f;
        ty = ty + y * f;
        accepted = accepted + 1;
      }
    }
    gauss[k] = tx + ty;
    int bin = accepted % 10;
    q[bin] += 1.0;
    sx += tx;
    sy += ty;
  }
  // L3: tally reduction (scalar sum).
  float qsum = 0.0;
  for (int l = 0; l < 10; l = l + 1) {
    qsum = qsum + q[l];
  }
  // L4: maximum deviation (conditional max reduction).
  float gmax = -1000000.0;
  for (int k = 0; k < 144; k = k + 1) {
    if (gauss[k] > gmax) { gmax = gauss[k]; }
  }
  // L5: running compensation — genuine cross-iteration recurrence.
  float[] comp = new float[144];
  comp[0] = gauss[0];
  for (int k = 1; k < 144; k = k + 1) {
    comp[k] = comp[k - 1] * 0.5 + gauss[k];
  }
  print("EP", sx, sy, qsum, gmax, comp[143]);
}
"""

EP = Benchmark(
    name="EP",
    suite="npb",
    source=SOURCE,
    description="Embarrassingly parallel pseudo-random trials",
    ground_truth={
        "main.L0": True,   # map
        "main.L1": True,   # trial loop: reductions + histogram
        # L2's iterations are literally identical computations (the body
        # never reads j), so reordering them provably preserves the outcome:
        # commutative, though only exploitable with seed skip-ahead.
        "main.L2": True,
        "main.L3": True,   # sum reduction
        "main.L4": True,   # max reduction
        "main.L5": False,  # linear recurrence
    },
    expert_loops=["main.L1"],
    expert_extra_fraction=0.0,
    rtol=1e-6,
)
