"""FT — spectral analysis via per-bin Goertzel recurrences.

NPB FT's hot path (FFT butterflies over transposed pencils) resists
simple loop parallelization: here the transform is a handful of Goertzel
filters, each an inherently serial second-order recurrence over the whole
signal, so DCA's loop-level scheme extracts only the few-way bin
parallelism while the expert version restructures the whole computation
(paper §V-E: "DC and FT are largely restructured to take advantage of
independent work-sharing").
"""

from repro.benchsuite.base import Benchmark

SOURCE = """
// FT: Goertzel-filter spectral probes on an evolving signal.
int N = 96;
int NBINS = 4;

func float goertzel_coeff(int k, int size) {
  float pi = 3.14159265358979;
  return 2.0 * cos(2.0 * pi * to_float(k) / to_float(size));
}

func void main() {
  float[] signal = new float[96];
  float[] power = new float[4];
  int[] bins = new int[4];

  // L0: pick the probe frequencies (map).
  for (int b = 0; b < 4; b = b + 1) {
    bins[b] = b * 7 + 3;
  }
  // L1: initialize the signal (map with pure calls).
  for (int i = 0; i < 96; i = i + 1) {
    signal[i] = sin(to_float(i) * 0.37) + 0.5 * cos(to_float(i) * 0.11);
  }

  // L2: time evolution steps (sequential).
  for (int t = 0; t < 3; t = t + 1) {
    // L3: per-bin Goertzel filters — independent bins, but only 4-way
    // parallelism; each filter is a serial recurrence (L4).
    for (int b = 0; b < 4; b = b + 1) {
      float coeff = goertzel_coeff(bins[b], 96);
      float s0 = 0.0;
      float s1 = 0.0;
      float s2 = 0.0;
      // L4: the Goertzel recurrence over the whole signal (serial).
      for (int i = 0; i < 96; i = i + 1) {
        s0 = signal[i] + coeff * s1 - s2;
        s2 = s1;
        s1 = s0;
      }
      power[b] = s1 * s1 + s2 * s2 - coeff * s1 * s2;
    }
    // L5: evolve the signal using the measured power (map).
    float total = power[0] + power[1] + power[2] + power[3];
    for (int i = 0; i < 96; i = i + 1) {
      signal[i] = signal[i] * 0.98
                + 0.0001 * total * sin(to_float(i + t) * 0.21);
    }
  }

  // L6: checksum (reduction).
  float chk = 0.0;
  for (int i = 0; i < 96; i = i + 1) {
    chk = chk + signal[i] * signal[i];
  }
  // L7: cumulative phase walk (serial recurrence).
  float phase = 0.0;
  for (int i = 1; i < 96; i = i + 1) {
    phase = phase * 0.9 + signal[i] * signal[i - 1];
  }
  print("FT", chk, phase, power[0], power[3]);
}
"""

FT = Benchmark(
    name="FT",
    suite="npb",
    source=SOURCE,
    description="Goertzel spectral probes with time evolution",
    ground_truth={
        "main.L0": True,
        "main.L1": True,
        "main.L2": False,  # time steps are sequential
        "main.L3": True,   # independent bins (only 4-way)
        "main.L4": False,  # Goertzel recurrence
        "main.L5": True,
        "main.L6": True,
        "main.L7": False,  # phase recurrence
    },
    expert_loops=["main.L3", "main.L5", "main.L6"],
    # The expert FT restructures the transform itself (work sharing across
    # the whole pipeline), far beyond the 4-way bin parallelism.
    expert_extra_fraction=0.85,
)
