"""LU — SSOR-style lower/upper sweeps.

LU's hot loops carry wavefront dependences across function calls (the
paper: "LU contains dependences across hot function calls", which is why
its high detection count does not translate into loop-level speedup).
Here the lower/upper triangular sweeps are genuine diagonal recurrences,
while the flux/rhs preparation loops are parallel maps with calls.
"""

from repro.benchsuite.base import Benchmark

SOURCE = """
// LU: SSOR sweeps over a flattened grid with helper functions.
int N = 20;

func float jac(float c, float n, float w) {
  return 0.6 * c + 0.2 * (n + w);
}

func float src_term(int i, int j) {
  return 0.05 * to_float(i) - 0.03 * to_float(j);
}

func void main() {
  float[] u = new float[400];
  float[] rsd = new float[400];

  // L0/L1: initialization (nested maps with a pure call).
  for (int i = 0; i < 20; i = i + 1) {
    for (int j = 0; j < 20; j = j + 1) {
      u[i * 20 + j] = 0.1 * to_float(i % 5) + 0.05 * to_float(j % 7);
      rsd[i * 20 + j] = src_term(i, j);
    }
  }

  // L2: SSOR iterations (sequential: iteration-dependent relaxation).
  for (int it = 0; it < 2; it = it + 1) {
    rsd[0] = rsd[0] * 0.9 + to_float(it) * 0.01 + 0.002;
    // L3/L4: lower-triangular sweep — wavefront recurrence via jac().
    for (int i = 1; i < 20; i = i + 1) {
      for (int j = 1; j < 20; j = j + 1) {
        u[i * 20 + j] = jac(u[i * 20 + j], u[(i - 1) * 20 + j],
                            u[i * 20 + j - 1]) + 0.1 * rsd[i * 20 + j];
      }
    }
    // L5/L6: upper-triangular sweep — reverse wavefront recurrence.
    for (int i = 18; i > 0; i = i - 1) {
      for (int j = 18; j > 0; j = j - 1) {
        u[i * 20 + j] = jac(u[i * 20 + j], u[(i + 1) * 20 + j],
                            u[i * 20 + j + 1]);
      }
    }
    // L7/L8: residual refresh (parallel map with calls).
    for (int i = 1; i < 19; i = i + 1) {
      for (int j = 1; j < 19; j = j + 1) {
        rsd[i * 20 + j] = src_term(i, j) - 0.01 * u[i * 20 + j];
      }
    }
  }

  // L9: residual norm (reduction).
  float rnorm = 0.0;
  for (int k = 0; k < 400; k = k + 1) {
    rnorm = rnorm + rsd[k] * rsd[k];
  }
  // L10: solution checksum on the diagonal (gather reduction).
  float diag = 0.0;
  for (int i = 0; i < 20; i = i + 1) {
    diag = diag + u[i * 20 + i];
  }
  print("LU", rnorm, diag, u[21], rsd[21]);
}
"""

LU = Benchmark(
    name="LU",
    suite="npb",
    source=SOURCE,
    description="SSOR lower/upper wavefront sweeps",
    ground_truth={
        "main.L0": True,
        "main.L1": True,
        "main.L2": False,  # SSOR iterations sequential
        "main.L3": False,  # lower wavefront
        "main.L4": False,
        "main.L5": False,  # upper wavefront
        "main.L6": False,
        "main.L7": True,
        "main.L8": True,
        "main.L9": True,
        "main.L10": True,
    },
    expert_loops=["main.L7", "main.L9", "main.L0", "main.L10"],
    # The expert LU uses pipelined wavefront parallelism for the sweeps.
    expert_extra_fraction=0.55,
)
