"""Benchmark-suite infrastructure.

Each benchmark is a MiniC program plus evaluation metadata:

* ``ground_truth`` — per-loop expert verdict on parallelizability, used
  for the precision study (paper Table IV, false positives/negatives);
* ``expert_loops`` — the loops the expert (OpenMP reference version)
  parallelizes, used by Fig. 6/7;
* ``expert_extra_fraction`` — how much of the remaining serial time full
  expert restructuring extracts beyond loop-level parallelism (Fig. 7);
* ``table2`` — for PLDS programs, the kernel loop and its literature
  record (paper Table II).

Loop labels are the stable ``<function>.L<n>`` names assigned by lowering
in source order; ``validate()`` checks that metadata references loops that
actually exist in the compiled program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.driver import compile_program
from repro.ir.function import Module


@dataclass
class Table2Info:
    """Literature record for a PLDS kernel (paper Table II)."""

    origin: str
    function: str
    #: The loop DCA should detect as commutative.
    kernel_label: str
    #: Loop-level potential speedup reported in the literature (× or None).
    lit_loop_speedup: Optional[float] = None
    #: Whole-program speedup reported in the literature (× or None).
    lit_overall_speedup: Optional[float] = None
    technique: str = ""


@dataclass
class Benchmark:
    """One benchmark program with evaluation metadata."""

    name: str
    suite: str  # "npb" | "plds"
    source: str
    description: str = ""
    entry: str = "main"
    #: Expert ground truth: label -> parallelizable?
    ground_truth: Dict[str, bool] = field(default_factory=dict)
    #: Loops parallelized by the expert reference implementation.
    expert_loops: List[str] = field(default_factory=list)
    #: Fraction of remaining serial time expert restructuring parallelizes.
    expert_extra_fraction: float = 0.0
    table2: Optional[Table2Info] = None
    #: Float tolerance for live-out comparison (FP reductions reorder).
    rtol: float = 1e-6
    #: The DCA live-out policy appropriate for this program ("strict"
    #: unless transient worklist ordering must be relaxed).
    liveout_policy: str = "strict"

    _module: Optional[Module] = field(default=None, repr=False)

    def compile(self, fresh: bool = False) -> Module:
        """Compile (and cache) the program."""
        if fresh:
            return compile_program(self.source)
        if self._module is None:
            self._module = compile_program(self.source)
        return self._module

    def loop_labels(self) -> List[str]:
        return self.compile().all_loop_labels()

    def validate(self) -> List[str]:
        """Metadata consistency problems (empty when clean)."""
        problems: List[str] = []
        labels = set(self.loop_labels())
        for label in self.ground_truth:
            if label not in labels:
                problems.append(f"ground_truth references unknown loop {label}")
        for label in self.expert_loops:
            if label not in labels:
                problems.append(f"expert_loops references unknown loop {label}")
        if self.table2 and self.table2.kernel_label not in labels:
            problems.append(
                f"table2 references unknown loop {self.table2.kernel_label}"
            )
        return problems
