"""spmatmat (SPARK00) — sparse matrix × dense matrix over linked rows.

The sparse matrix is a linked list of rows, each a linked list of
(column, value) elements; every row independently produces one dense
output row — a PLDS loop nest with disjoint output (Table II: ~4× via
APOLLO).
"""

from repro.benchsuite.base import Benchmark, Table2Info

SOURCE = """
struct Elem { int col; float val; Elem* next; }
struct Row { int idx; Elem* elems; float[] out; Row* next; }

int NROWS = 24;
int NCOLS = 24;
int NB = 16;

func void main() {
  float[] dense = new float[384];   // NCOLS x NB dense operand
  // L0: fill the dense operand (map).
  for (int k = 0; k < 384; k = k + 1) {
    dense[k] = sin(to_float(k) * 0.13);
  }

  // L1: build linked sparse rows (band pattern, ordered construction).
  Row* rows = null;
  for (int r = 0; r < 24; r = r + 1) {
    Row* row = new Row;
    row->idx = r;
    row->out = new float[16];
    Elem* elems = null;
    // L2: elements per row.
    for (int d = 0; d < 3; d = d + 1) {
      Elem* e = new Elem;
      e->col = (r + d * 5) % 24;
      e->val = 1.0 / to_float(1 + r + d);
      e->next = elems;
      elems = e;
    }
    row->elems = elems;
    row->next = rows;
    rows = row;
  }

  // L3: spmatmat kernel — per-row products into the row's own buffer.
  Row* row = rows;
  while (row) {
    // L4: row elements.
    Elem* e = row->elems;
    while (e) {
      // L5: accumulate over the dense columns.
      for (int b = 0; b < 16; b = b + 1) {
        row->out[b] = row->out[b] + e->val * dense[e->col * 16 + b];
      }
      e = e->next;
    }
    row = row->next;
  }

  // L6: result norm (nested reduction over rows).
  float norm = 0.0;
  row = rows;
  while (row) {
    // L7: per-row partial.
    for (int b = 0; b < 16; b = b + 1) {
      norm = norm + row->out[b] * row->out[b];
    }
    row = row->next;
  }
  print("spmatmat", norm);
}
"""

SPMATMAT = Benchmark(
    name="spmatmat",
    suite="plds",
    source=SOURCE,
    description="SPARK00 spmatmat: linked sparse rows x dense",
    ground_truth={
        "main.L0": True,
        "main.L1": False,
        "main.L2": False,
        "main.L3": True,   # independent rows
        "main.L4": True,   # element contributions commute (FP rtol)
        "main.L5": True,
        "main.L6": True,
        "main.L7": True,
    },
    expert_loops=["main.L3"],
    table2=Table2Info(
        origin="SPARK00",
        function="main",
        kernel_label="main.L3",
        lit_overall_speedup=4.0,
        technique="APOLLO [46]",
    ),
)
