"""em3d (Olden) — ``compute_nodes``: bipartite E/H field updates.

Each E-node's value is recomputed from its H-node neighbours (through
per-node pointer arrays); writes are disjoint per node, reads target the
other partition — the classic Olden DSWP loop (Table II: ~2×).
"""

from repro.benchsuite.base import Benchmark, Table2Info

SOURCE = """
struct ENode { float value; ENode* next; ENode* from0; ENode* from1;
               float coeff0; float coeff1; }

int NNODES = 40;

func void main() {
  // L0: build the H list.
  ENode* hlist = null;
  ENode*[] hvec = new ENode*[40];
  for (int i = 0; i < 40; i = i + 1) {
    ENode* h = new ENode;
    h->value = sin(to_float(i) * 0.7);
    h->next = hlist;
    hlist = h;
    hvec[i] = h;
  }
  // L1: build the E list wired to two H neighbours each.
  ENode* elist = null;
  for (int i = 0; i < 40; i = i + 1) {
    ENode* e = new ENode;
    e->value = 0.0;
    e->from0 = hvec[(i * 7) % 40];
    e->from1 = hvec[(i * 11 + 3) % 40];
    e->coeff0 = 0.6;
    e->coeff1 = 0.4;
    e->next = elist;
    elist = e;
  }

  // L2: compute_nodes — the Table II kernel: disjoint per-node writes,
  // cross-partition reads through pointer fields.
  ENode* node = elist;
  while (node) {
    node->value = node->coeff0 * node->from0->value
                + node->coeff1 * node->from1->value;
    node = node->next;
  }

  // L3: field energy (reduction).
  float energy = 0.0;
  node = elist;
  while (node) {
    energy = energy + node->value * node->value;
    node = node->next;
  }
  print("em3d", energy);
}
"""

EM3D = Benchmark(
    name="em3d",
    suite="plds",
    source=SOURCE,
    description="Olden em3d compute_nodes bipartite update",
    ground_truth={
        "main.L0": False,
        "main.L1": False,
        "main.L2": True,
        "main.L3": True,
    },
    expert_loops=["main.L2"],
    table2=Table2Info(
        origin="Olden",
        function="compute_nodes",
        kernel_label="main.L2",
        lit_loop_speedup=2.0,
        technique="DSWP variant 1",
    ),
)
