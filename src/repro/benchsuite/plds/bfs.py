"""BFS (Lonestar) — the paper's Fig. 2 motivating example.

Worklist-driven breadth-first search.  The frontier is a linked worklist
(pop feeds the loop condition through memory — profile-guided iterator
recognition territory); the next frontier is a *bag*: a membership-flag
array plus count, whose state is insertion-order-insensitive, so the
top-down step passes even strict live-out verification (the Galois-style
unordered-worklist formulation).
"""

from repro.benchsuite.base import Benchmark, Table2Info

SOURCE = """
struct Node { int vert; Node* next; }
struct WorkList { int size; Node* head; }

int NV = 160;

func void push(WorkList* wl, int v) {
  Node* n = new Node;
  n->vert = v;
  n->next = wl->head;
  wl->head = n;
  wl->size = wl->size + 1;
}

func int pop(WorkList* wl) {
  Node* n = wl->head;
  wl->head = n->next;
  wl->size = wl->size - 1;
  return n->vert;
}

func void main() {
  int[] adj_off = new int[161];
  int[] adj = new int[640];
  // L0: build a ring-with-chords graph in CSR form (cursor recurrence).
  int pos = 0;
  for (int v = 0; v < 160; v = v + 1) {
    adj_off[v] = pos;
    adj[pos] = (v + 1) % 160; pos = pos + 1;
    adj[pos] = (v + 159) % 160; pos = pos + 1;
    if (v % 2 == 1) {
      adj[pos] = (v + 37) % 160; pos = pos + 1;
      adj[pos] = (v + 81) % 160; pos = pos + 1;
    }
  }
  adj_off[160] = pos;

  int[] dist = new int[160];
  int[] in_next = new int[160];
  // L1: distance init (map).
  for (int v = 0; v < 160; v = v + 1) {
    dist[v] = 1000000;
    in_next[v] = 0;
  }
  dist[0] = 0;

  WorkList* frontier = new WorkList;
  push(frontier, 0);
  int next_count = 1;
  // L2: BFS level loop (sequential: levels depend on each other).
  while (next_count) {
    next_count = 0;
    // L3: top-down step — the loop DCA detects as commutative.
    while (frontier->size) {
      int current = pop(frontier);
      // L4: neighbor scan with relaxation into the bag.
      for (int e = adj_off[current]; e < adj_off[current + 1]; e = e + 1) {
        int n = adj[e];
        if (dist[n] > dist[current] + 1) {
          dist[n] = dist[current] + 1;
          if (in_next[n] == 0) {
            in_next[n] = 1;
            next_count = next_count + 1;
          }
        }
      }
    }
    // L5: rebuild the frontier from the bag (cursor-free, ordered scan).
    for (int v = 0; v < 160; v = v + 1) {
      if (in_next[v] == 1) {
        in_next[v] = 0;
        push(frontier, v);
      }
    }
  }
  // L6: distance checksum (reduction).
  int sum = 0;
  for (int v = 0; v < 160; v = v + 1) {
    sum = sum + dist[v];
  }
  print("BFS", sum, dist[80]);
}
"""

BFS = Benchmark(
    name="BFS",
    suite="plds",
    source=SOURCE,
    description="Lonestar-style worklist BFS (Fig. 2)",
    ground_truth={
        "main.L0": False,  # CSR cursor
        "main.L1": True,
        "main.L2": False,  # level synchronization
        "main.L3": True,   # top-down step (paper's claim)
        "main.L4": True,   # neighbor relaxation (benign with atomics)
        # L5 constructs the frontier *list*, whose node order is part of
        # the loop's live-out state: an ordered construction (the bag
        # itself is order-free, the list is not).
        "main.L5": False,
        "main.L6": True,
    },
    expert_loops=["main.L3"],
    table2=Table2Info(
        origin="Lonestar",
        function="BFS",
        kernel_label="main.L3",
        lit_overall_speedup=21.0,
        technique="Galois [44]",
    ),
)
