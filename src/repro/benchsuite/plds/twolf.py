"""300.twolf (SPEC CPU2000) — ``new_dbox_a``-style doubly-nested lists.

Placement cost evaluation: for each cell in a linked list, walk the
cell's net list and accumulate half-perimeter wire-length terms — the
doubly-nested linked-list traversal the paper calls out (§V-B2).
"""

from repro.benchsuite.base import Benchmark, Table2Info

SOURCE = """
struct Pin { int x; int y; Pin* next; }
struct Net { Pin* pins; int weight; Net* next; }
struct Cell { Net* nets; int xpos; Cell* next; }

int NCELLS = 24;

func void main() {
  // L0: build cells, each with a few nets of a few pins.
  Cell* cells = null;
  for (int c = 0; c < 24; c = c + 1) {
    Cell* cell = new Cell;
    cell->xpos = (c * 13) % 40;
    cell->next = cells;
    Net* nets = null;
    // L1: nets per cell.
    for (int n = 0; n < 3; n = n + 1) {
      Net* net = new Net;
      net->weight = n + 1;
      net->next = nets;
      Pin* pins = null;
      // L2: pins per net.
      for (int p = 0; p < 4; p = p + 1) {
        Pin* pin = new Pin;
        pin->x = (c * 7 + n * 5 + p * 3) % 50;
        pin->y = (c * 11 + n * 2 + p * 9) % 50;
        pin->next = pins;
        pins = pin;
      }
      net->pins = pins;
      nets = net;
    }
    cell->nets = nets;
    cells = cell;
  }

  // L3: new_dbox_a — per-cell wire-length delta (Table II kernel):
  // doubly-nested linked-list traversal with a cost reduction.
  int total = 0;
  Cell* cell = cells;
  while (cell) {
    int cost = 0;
    // L4: net list walk.
    Net* net = cell->nets;
    while (net) {
      int minx = 1000000;
      int maxx = -1000000;
      // L5: pin list walk (bounding-box min/max).
      Pin* pin = net->pins;
      while (pin) {
        if (pin->x < minx) { minx = pin->x; }
        if (pin->x > maxx) { maxx = pin->x; }
        pin = pin->next;
      }
      cost = cost + net->weight * (maxx - minx + cell->xpos % 7);
      net = net->next;
    }
    total += cost;
    cell = cell->next;
  }
  print("twolf", total);
}
"""

TWOLF = Benchmark(
    name="twolf",
    suite="plds",
    source=SOURCE,
    description="SPEC 300.twolf new_dbox_a nested list traversal",
    ground_truth={
        "main.L0": False,  # ordered construction
        "main.L1": False,
        "main.L2": False,
        "main.L3": True,   # per-cell cost: independent cells
        "main.L4": True,   # per-net terms: sum reduction
        "main.L5": True,   # bounding box: min/max reduction
    },
    expert_loops=["main.L3"],
    table2=Table2Info(
        origin="SPEC CPU2000",
        function="new_dbox_a",
        kernel_label="main.L3",
        lit_loop_speedup=1.5,
        technique="DSWP variant 2 [40]",
    ),
)
