"""treeadd (Olden) — binary-tree sum, rewritten imperatively (worklist).

The kernel traverses the tree through an explicit stack; the traversal
(pop + child pushes) is the iterator, the payload is a sum reduction —
the canonical DCA-only loop (Table II: partitioning exploited it for ~7×).
"""

from repro.benchsuite.base import Benchmark, Table2Info

SOURCE = """
struct Tree { int val; Tree* left; Tree* right; }
struct Item { Tree* node; Item* next; }
struct Stack { Item* top; int size; }

int LEVELS = 8;

func void push(Stack* s, Tree* n) {
  Item* it = new Item;
  it->node = n;
  it->next = s->top;
  s->top = it;
  s->size = s->size + 1;
}

func Tree* pop(Stack* s) {
  Item* it = s->top;
  s->top = it->next;
  s->size = s->size - 1;
  return it->node;
}

func Tree* build(int level, int seed) {
  Tree* t = new Tree;
  t->val = seed % 100;
  if (level > 1) {
    t->left = build(level - 1, seed * 3 + 1);
    t->right = build(level - 1, seed * 5 + 2);
  }
  return t;
}

func int nodework(int v) {
  int h = v;
  h = (h * 31 + 7) % 65536;
  h = (h * 17 + 3) % 65536;
  h = (h * 13 + 11) % 65536;
  h = (h * 29 + 5) % 65536;
  h = (h * 19 + 1) % 65536;
  h = (h * 23 + 9) % 65536;
  return h % 1000;
}

func void main() {
  Tree* root = build(8, 42);
  Stack* stack = new Stack;
  push(stack, root);
  int sum = 0;
  // TreeAdd kernel: worklist traversal + per-node work reduction (main.L0).
  while (stack->size) {
    Tree* n = pop(stack);
    if (n->left) { push(stack, n->left); }
    if (n->right) { push(stack, n->right); }
    sum += nodework(n->val);
  }
  print("treeadd", sum);
}
"""

TREEADD = Benchmark(
    name="treeadd",
    suite="plds",
    source=SOURCE,
    description="Olden treeadd: worklist tree sum",
    ground_truth={"main.L0": True},
    expert_loops=["main.L0"],
    table2=Table2Info(
        origin="Olden",
        function="TreeAdd",
        kernel_label="main.L0",
        lit_overall_speedup=7.0,
        technique="Partitioning [43]",
    ),
)
