"""perimeter (Olden) — quadtree perimeter computation (imperative form).

Worklist traversal of a quadtree counting boundary contributions of the
leaves — structurally treeadd with a leaf-classified payload.
"""

from repro.benchsuite.base import Benchmark, Table2Info

SOURCE = """
struct Quad { int color; int level; Quad* c0; Quad* c1; Quad* c2; Quad* c3; }
struct Item { Quad* node; Item* next; }
struct Stack { Item* top; int size; }

int DEPTH = 5;

func void push(Stack* s, Quad* q) {
  Item* it = new Item;
  it->node = q;
  it->next = s->top;
  s->top = it;
  s->size = s->size + 1;
}

func Quad* pop(Stack* s) {
  Item* it = s->top;
  s->top = it->next;
  s->size = s->size - 1;
  return it->node;
}

func Quad* build(int level, int code) {
  Quad* q = new Quad;
  q->level = level;
  q->color = code % 3;
  if (level > 1 && code % 5 != 0) {
    q->c0 = build(level - 1, code * 2 + 1);
    q->c1 = build(level - 1, code * 3 + 1);
    q->c2 = build(level - 1, code * 5 + 2);
    q->c3 = build(level - 1, code * 7 + 3);
  }
  return q;
}

func void main() {
  Quad* root = build(5, 1);
  Stack* stack = new Stack;
  push(stack, root);
  int perim = 0;
  // perimeter kernel: worklist traversal + boundary-count reduction.
  while (stack->size) {
    Quad* q = pop(stack);
    if (q->c0) { push(stack, q->c0); }
    if (q->c1) { push(stack, q->c1); }
    if (q->c2) { push(stack, q->c2); }
    if (q->c3) { push(stack, q->c3); }
    int contrib = q->color;
    contrib = (contrib * 37 + q->level * 11 + 5) % 4096;
    contrib = (contrib * 53 + 7) % 4096;
    contrib = (contrib * 41 + 13) % 4096;
    contrib = (contrib * 61 + 3) % 4096;
    perim += (contrib % 2) * (q->level + 3) + contrib % 7;
  }
  print("perimeter", perim);
}
"""

PERIMETER = Benchmark(
    name="perimeter",
    suite="plds",
    source=SOURCE,
    description="Olden perimeter: quadtree boundary count",
    ground_truth={"main.L0": True},
    expert_loops=["main.L0"],
    table2=Table2Info(
        origin="Olden",
        function="perimeter",
        kernel_label="main.L0",
        lit_loop_speedup=2.25,
        technique="DSWP variant 1",
    ),
)
