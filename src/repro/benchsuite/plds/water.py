"""water-spatial (SPLASH-3) — ``INTERF``: intra-cell pairwise forces.

Molecules live in linked cell lists; each molecule accumulates the force
from the other molecules in its cell into its own field — disjoint
per-molecule writes with shared reads (Table II: 2× via OpenMP).
"""

from repro.benchsuite.base import Benchmark, Table2Info

SOURCE = """
struct Mol { float pos; float force; Mol* cellmate; Mol* next; }

int NMOL = 120;
int NCELLS = 6;

func void main() {
  Mol*[] cells = new Mol*[6];
  // L0: distribute molecules into cell lists and a global list.
  Mol* all = null;
  for (int i = 0; i < 120; i = i + 1) {
    Mol* m = new Mol;
    m->pos = to_float((i * 29) % 100) * 0.1;
    m->force = 0.0;
    int c = i % 6;
    m->cellmate = cells[c];
    cells[c] = m;
    m->next = all;
    all = m;
  }

  // L1: INTERF — the Table II kernel: per-molecule force accumulation
  // from its cell's list (reads shared positions, writes own force).
  Mol* m = all;
  while (m) {
    float f = 0.0;
    int c = to_int(m->pos * 10.0) % 6;
    // L2: scan the molecule's cell list.
    Mol* other = cells[to_int(m->pos * 10.0) % 6];
    while (other) {
      float d = m->pos - other->pos;
      if (d < 0.0) { d = 0.0 - d; }
      if (d > 0.0001) {
        f = f + 1.0 / (d * d + 0.5);
      }
      other = other->cellmate;
    }
    m->force = f;
    m = m->next;
  }

  // L3: total potential (reduction).
  float total = 0.0;
  m = all;
  while (m) {
    total = total + m->force;
    m = m->next;
  }
  print("water", total);
}
"""

WATER = Benchmark(
    name="water-spatial",
    suite="plds",
    source=SOURCE,
    description="SPLASH-3 water-spatial INTERF cell-list forces",
    ground_truth={
        "main.L0": False,  # ordered list construction
        "main.L1": True,   # per-molecule force: disjoint writes
        "main.L2": True,   # pair sum reduction (FP rtol)
        "main.L3": True,
    },
    expert_loops=["main.L1"],
    table2=Table2Info(
        origin="SPLASH3",
        function="INTERF",
        kernel_label="main.L1",
        lit_overall_speedup=2.0,
        technique="OPENMP",
    ),
)
