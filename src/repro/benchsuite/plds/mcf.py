"""429.mcf (SPEC CPU2006) — ``refresh_potential`` tree traversal.

The paper's most interesting Table II row: the loop carries a real
cross-iteration dependence (a node reads its predecessor's potential),
but the test/reference workloads never exercise it — the default tree
here is a star (depth 1), so every predecessor's potential is final
before the loop and DCA reports the loop commutative.  Setting the global
``DEEP`` to 1 builds a chain-shaped tree that *does* exercise the
dependence, letting tests demonstrate the input-sensitivity caveat
(paper §IV-D / §V-B2).
"""

from repro.benchsuite.base import Benchmark, Table2Info

SOURCE = """
struct MNode { int potential; int cost; MNode* pred; MNode* sibling; }

int NNODES = 48;
int DEEP = 0;

func void main() {
  MNode* root = new MNode;
  root->potential = 100;
  root->cost = 0;
  MNode* chain = null;
  MNode* prev = root;
  // L0: build the node list (star by default, chain when DEEP=1).
  for (int i = 0; i < 48; i = i + 1) {
    MNode* n = new MNode;
    n->cost = (i * 37) % 50 + 1;
    if (DEEP == 1) {
      n->pred = prev;
      prev = n;
    } else {
      n->pred = root;
    }
    n->sibling = chain;
    chain = n;
  }

  // L1: refresh_potential — the Table II kernel.  Reads pred->potential,
  // writes the node's own potential while chasing the sibling list.
  MNode* node = chain;
  while (node) {
    node->potential = node->pred->potential + node->cost;
    node = node->sibling;
  }

  // L2: checksum (reduction over the list).
  int checksum = 0;
  node = chain;
  while (node) {
    checksum = checksum + node->potential;
    node = node->sibling;
  }
  print("mcf", checksum);
}
"""

MCF = Benchmark(
    name="mcf",
    suite="plds",
    source=SOURCE,
    description="SPEC 429.mcf refresh_potential (latent dependence)",
    ground_truth={
        "main.L0": False,  # ordered list construction
        # Known *not* to be statically commutative; the dependence is not
        # exercised by the default (star) workload, so DCA reports it —
        # the paper reports exactly this (speculative parallelization
        # relies on the dependence being infrequent).
        "main.L1": True,
        "main.L2": True,
    },
    expert_loops=["main.L1"],
    table2=Table2Info(
        origin="SPEC CPU2006",
        function="refresh_potential",
        kernel_label="main.L1",
        lit_loop_speedup=2.2,
        technique="DSWP variant 1 [37], [38]",
    ),
)
