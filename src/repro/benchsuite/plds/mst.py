"""mst (Olden) — ``BlueRule``: minimum light-edge selection.

Prim-style step: scan the list of not-yet-included vertices, compute each
one's distance to the growing tree through a linked adjacency (hash-like)
chain, and keep the unique minimum — a nested PLDS argmin (Table II).
"""

from repro.benchsuite.base import Benchmark, Table2Info

SOURCE = """
struct HashEnt { int key; int dist; HashEnt* next; }
struct Vert { int id; int mindist; HashEnt* adj; Vert* next; }

int NVERT = 32;

func void main() {
  // L0: build the vertex list with chained adjacency entries.
  Vert* verts = null;
  for (int v = 0; v < 32; v = v + 1) {
    Vert* vx = new Vert;
    vx->id = v;
    vx->mindist = 1000000;
    vx->next = verts;
    HashEnt* adj = null;
    // L1: adjacency chain per vertex (unique distances).
    for (int e = 0; e < 4; e = e + 1) {
      HashEnt* h = new HashEnt;
      h->key = (v + e * 9) % 32;
      h->dist = ((v * 4 + e) * 53 % 211) * 128 + v * 4 + e + 1;
      h->next = adj;
      adj = h;
    }
    vx->adj = adj;
    verts = vx;
  }

  // L2: BlueRule — the Table II kernel: per-vertex chain scan (L3) and
  // global unique-argmin tracking.
  int best = 1000000000;
  int best_vert = -1;
  Vert* vx = verts;
  while (vx) {
    int local = 1000000000;
    // L3: chain walk for the vertex's lightest edge.
    HashEnt* h = vx->adj;
    while (h) {
      if (h->dist < local) { local = h->dist; }
      h = h->next;
    }
    vx->mindist = local;
    if (local < best) {
      best = local;
      best_vert = vx->id;
    }
    vx = vx->next;
  }
  // L4: checksum of per-vertex minima (reduction).
  int chk = 0;
  vx = verts;
  while (vx) {
    chk = chk + vx->mindist % 1000;
    vx = vx->next;
  }
  print("mst", best, best_vert, chk);
}
"""

MST = Benchmark(
    name="mst",
    suite="plds",
    source=SOURCE,
    description="Olden mst BlueRule nested argmin",
    ground_truth={
        "main.L0": False,
        "main.L1": False,
        "main.L2": True,
        "main.L3": True,
        "main.L4": True,
    },
    expert_loops=["main.L2"],
    table2=Table2Info(
        origin="Olden",
        function="BlueRule",
        kernel_label="main.L2",
        lit_loop_speedup=1.5,
        technique="DSWP variant 1",
    ),
)
