"""otter (FOSS theorem prover) — ``find_lightest_geo_child``.

Scan a clause's linked child list for the lightest element (unique
weights → order-insensitive argmin), repeated over a list of clauses.
Coverage is moderate (~15% in the paper): the driver does other work.
"""

from repro.benchsuite.base import Benchmark, Table2Info

SOURCE = """
struct Child { int weight; int id; Child* next; }
struct Clause { Child* children; int tag; Clause* next; }

int NCLAUSES = 30;

func void main() {
  // L0: build clause list with child lists (unique weights).
  Clause* clauses = null;
  for (int c = 0; c < 30; c = c + 1) {
    Clause* cl = new Clause;
    cl->tag = c;
    cl->next = clauses;
    Child* kids = null;
    // L1: children per clause.
    for (int k = 0; k < 6; k = k + 1) {
      Child* ch = new Child;
      ch->id = c * 6 + k;
      ch->weight = ((c * 6 + k) * 37 % 181) * 32 + ch->id % 32;
      ch->next = kids;
      kids = ch;
    }
    cl->children = kids;
    clauses = cl;
  }

  // L2: driver — per-clause lightest-child selection (Table II kernel
  // is the inner scan; the outer loop is also commutative).
  int total = 0;
  Clause* cl = clauses;
  while (cl) {
    int lightest = 1000000000;
    int pick = -1;
    // L3: find_lightest_geo_child — argmin over the child list.
    Child* ch = cl->children;
    while (ch) {
      if (ch->weight < lightest) {
        lightest = ch->weight;
        pick = ch->id;
      }
      ch = ch->next;
    }
    total += pick + lightest % 97;
    cl = cl->next;
  }
  // L4: post-pass: weight decay on every child (nested map).
  cl = clauses;
  while (cl) {
    Child* ch = cl->children;
    // L5: inner decay map.
    while (ch) {
      ch->weight = ch->weight - ch->weight / 10;
      ch = ch->next;
    }
    cl = cl->next;
  }
  int chk = 0;
  // L6: checksum.
  cl = clauses;
  while (cl) {
    chk = chk + cl->children->weight;
    cl = cl->next;
  }
  print("otter", total, chk);
}
"""

OTTER = Benchmark(
    name="otter",
    suite="plds",
    source=SOURCE,
    description="otter find_lightest_geo_child argmin scans",
    ground_truth={
        "main.L0": False,
        "main.L1": False,
        "main.L2": True,
        "main.L3": True,
        "main.L4": True,
        "main.L5": True,
        "main.L6": True,
    },
    expert_loops=["main.L3"],
    table2=Table2Info(
        origin="FOSS",
        function="find_lightest_geo_child",
        kernel_label="main.L3",
        lit_loop_speedup=2.5,
        technique="DSWP variant 2",
    ),
)
