"""ising (community) — lattice spin sweep over linked cells.

Deterministic two-phase Ising-style update: each linked cell computes its
next spin from its neighbours' current spins (disjoint writes to a
shadow field), then a commit pass copies shadow → spin.  Both sweeps are
commutative PLDS traversals (Table II: ~6× via ASC).
"""

from repro.benchsuite.base import Benchmark, Table2Info

SOURCE = """
struct Site { int spin; int next_spin; Site* left; Site* right; Site* next; }

int NSITES = 192;

func void main() {
  // L0: build a ring of sites linked into a traversal list.
  Site*[] ring = new Site*[192];
  for (int i = 0; i < 192; i = i + 1) {
    Site* s = new Site;
    s->spin = ((i * 31) % 7) % 2 * 2 - 1;
    ring[i] = s;
  }
  // L1: wire neighbours and the traversal list.
  Site* sites = null;
  for (int i = 0; i < 192; i = i + 1) {
    ring[i]->left = ring[(i + 191) % 192];
    ring[i]->right = ring[(i + 1) % 192];
    ring[i]->next = sites;
    sites = ring[i];
  }

  // L2: sweeps (sequential time steps).
  for (int t = 0; t < 4; t = t + 1) {
    // L3: compute next spins — the Table II kernel (disjoint writes).
    Site* s = sites;
    while (s) {
      int field = s->left->spin + s->right->spin + (t % 2) * 2 - 1;
      if (field > 0) {
        s->next_spin = 1;
      } else {
        s->next_spin = -1;
      }
      s = s->next;
    }
    // L4: commit (map over cells).
    s = sites;
    while (s) {
      s->spin = s->next_spin;
      s = s->next;
    }
  }

  // L5: magnetization (reduction).
  int mag = 0;
  Site* s = sites;
  while (s) {
    mag = mag + s->spin;
    s = s->next;
  }
  print("ising", mag);
}
"""

ISING = Benchmark(
    name="ising",
    suite="plds",
    source=SOURCE,
    description="Ising lattice sweep over linked cells",
    ground_truth={
        "main.L0": True,   # disjoint slot writes
        "main.L1": False,  # ordered list construction
        "main.L2": False,  # time steps
        "main.L3": True,
        "main.L4": True,
        "main.L5": True,
    },
    expert_loops=["main.L3", "main.L4"],
    table2=Table2Info(
        origin="community",
        function="main",
        kernel_label="main.L3",
        lit_overall_speedup=6.0,
        technique="ASC [45]",
    ),
)
