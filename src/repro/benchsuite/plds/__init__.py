"""MiniC ports of the 14 PLDS programs of paper Table II."""

from repro.benchsuite.plds.bfs import BFS
from repro.benchsuite.plds.bh import BH
from repro.benchsuite.plds.em3d import EM3D
from repro.benchsuite.plds.hash import HASH
from repro.benchsuite.plds.ising import ISING
from repro.benchsuite.plds.ks import KS
from repro.benchsuite.plds.mcf import MCF
from repro.benchsuite.plds.mst import MST
from repro.benchsuite.plds.otter import OTTER
from repro.benchsuite.plds.perimeter import PERIMETER
from repro.benchsuite.plds.spmatmat import SPMATMAT
from repro.benchsuite.plds.treeadd import TREEADD
from repro.benchsuite.plds.twolf import TWOLF
from repro.benchsuite.plds.water import WATER

PLDS_BENCHMARKS = (
    MCF, TWOLF, KS, OTTER, EM3D, MST, BH, PERIMETER,
    TREEADD, HASH, BFS, ISING, SPMATMAT, WATER,
)

#: The subset shown in the paper's Fig. 5 speedup chart.
FIG5_BENCHMARKS = (TREEADD, PERIMETER, WATER, KS, SPMATMAT, BFS, ISING)

__all__ = [
    "BFS", "BH", "EM3D", "FIG5_BENCHMARKS", "HASH", "ISING", "KS", "MCF",
    "MST", "OTTER", "PERIMETER", "PLDS_BENCHMARKS", "SPMATMAT", "TREEADD",
    "TWOLF", "WATER",
]
