"""bh (Olden) — Barnes-Hut ``walksub``, rewritten imperatively.

For each body, walk the force tree through an explicit stack, opening
cells that are too close and accumulating accelerations — a per-body
read-only tree walk with a private force reduction (Table II: 2.75×).
"""

from repro.benchsuite.base import Benchmark, Table2Info

SOURCE = """
struct Cell { float mass; float pos; float size; Cell* left; Cell* right; }
struct Body { float pos; float acc; Body* next; }
struct Frame { Cell* cell; Frame* next; }

int NBODY = 24;

func Cell* build_tree(int depth, float center, float size) {
  Cell* c = new Cell;
  c->pos = center;
  c->size = size;
  if (depth == 0) {
    c->mass = 1.0 + center * 0.01;
    return c;
  }
  c->left = build_tree(depth - 1, center - size / 4.0, size / 2.0);
  c->right = build_tree(depth - 1, center + size / 4.0, size / 2.0);
  c->mass = c->left->mass + c->right->mass;
  return c;
}

func void main() {
  Cell* root = build_tree(5, 50.0, 100.0);
  // L0: build the body list.
  Body* bodies = null;
  for (int b = 0; b < 24; b = b + 1) {
    Body* bd = new Body;
    bd->pos = to_float((b * 17) % 100);
    bd->acc = 0.0;
    bd->next = bodies;
    bodies = bd;
  }

  // L1: walksub over all bodies — the Table II kernel: per-body
  // read-only tree walk with a private acceleration accumulation.
  Body* body = bodies;
  while (body) {
    float acc = 0.0;
    Frame* stack = new Frame;
    stack->cell = root;
    // L2: explicit-stack tree walk (opening criterion).
    while (stack) {
      Cell* c = stack->cell;
      stack = stack->next;
      float d = c->pos - body->pos;
      if (d < 0.0) { d = 0.0 - d; }
      if (c->size < d + 1.0) {
        // far enough: use the aggregate mass
        acc = acc + c->mass / (d * d + 1.0);
      } else {
        if (c->left) {
          Frame* f1 = new Frame;
          f1->cell = c->left;
          f1->next = stack;
          stack = f1;
        }
        if (c->right) {
          Frame* f2 = new Frame;
          f2->cell = c->right;
          f2->next = stack;
          stack = f2;
        }
        if (c->left == null && c->right == null) {
          acc = acc + c->mass / (d * d + 1.0);
        }
      }
    }
    body->acc = acc;
    body = body->next;
  }

  // L3: total acceleration (reduction).
  float total = 0.0;
  body = bodies;
  while (body) {
    total = total + body->acc;
    body = body->next;
  }
  print("bh", total);
}
"""

BH = Benchmark(
    name="bh",
    suite="plds",
    source=SOURCE,
    description="Olden bh walksub per-body tree walks",
    ground_truth={
        "main.L0": False,
        "main.L1": True,   # per-body walks are independent
        # main.L2 (the walk itself) is excluded from the precision study:
        # its payload interleaves with the opening-criterion control flow,
        # so no SESE payload region exists (untestable for outlining-based
        # DCA, as for LLVM CodeExtractor).
        "main.L3": True,
    },
    expert_loops=["main.L1"],
    table2=Table2Info(
        origin="Olden",
        function="walksub",
        kernel_label="main.L1",
        lit_loop_speedup=2.75,
        technique="DSWP variant 1",
    ),
)
