"""ks (PtrDist) — ``FindMaxGpAndSwap``: max-gain search over module lists.

Kernighan-Schweikert partitioning: scan every module in the A-list,
compute its move gain from a linked net list, and track the argmax.
Gains are unique by construction, so the argmax is order-insensitive.
Covers ~99% of sequential time, matching the Table II row.
"""

from repro.benchsuite.base import Benchmark, Table2Info

SOURCE = """
struct NetRef { int weight; NetRef* next; }
struct Module { int id; int base_gain; NetRef* nets; Module* next; }

int NMODULES = 96;

func void main() {
  // L0: build the module list with per-module net references.
  Module* mods = null;
  for (int m = 0; m < 96; m = m + 1) {
    Module* mod = new Module;
    mod->id = m;
    mod->base_gain = (m * 17) % 31;
    mod->next = mods;
    NetRef* nets = null;
    // L1: nets per module.
    for (int n = 0; n < 10; n = n + 1) {
      NetRef* ref = new NetRef;
      ref->weight = (m * 3 + n * 7) % 13 + 1;
      ref->next = nets;
      nets = ref;
    }
    mod->nets = nets;
    mods = mod;
  }

  // L2: FindMaxGpAndSwap — the Table II kernel: per-module gain
  // computation (inner list reduction) + unique-argmax tracking.
  int best_gain = -1000000;
  int best_id = -1;
  Module* mod = mods;
  while (mod) {
    int gain = mod->base_gain * 64;
    // L3: gain contribution from the module's nets.
    NetRef* ref = mod->nets;
    while (ref) {
      gain = gain + ref->weight;
      ref = ref->next;
    }
    gain = gain * 64 + mod->id;   // unique tie-break: gains are distinct
    if (gain > best_gain) {
      best_gain = gain;
      best_id = mod->id;
    }
    mod = mod->next;
  }
  print("ks", best_gain, best_id);
}
"""

KS = Benchmark(
    name="ks",
    suite="plds",
    source=SOURCE,
    description="PtrDist ks FindMaxGpAndSwap max-gain scan",
    ground_truth={
        "main.L0": False,
        "main.L1": False,
        "main.L2": True,   # unique argmax over modules
        "main.L3": True,   # gain reduction
    },
    expert_loops=["main.L2"],
    table2=Table2Info(
        origin="PtrDist",
        function="FindMaxGpAndSwap",
        kernel_label="main.L2",
        lit_loop_speedup=1.5,
        technique="DSWP variant 1",
    ),
)
