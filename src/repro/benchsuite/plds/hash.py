"""hash (Shootout) — ``ht_find`` over a chained hash table.

A linked list of probe requests drives lookups into a bucket-chained hash
table; each probe walks its bucket chain read-only and accumulates the
found value.  The probe-list traversal is the pointer-chasing iterator
that defeats the dependence-based baselines.
"""

from repro.benchsuite.base import Benchmark, Table2Info

SOURCE = """
struct Entry { int key; int value; Entry* next; }
struct Probe { int key; int result; Probe* next; }

int NBUCKETS = 16;
int NINSERT = 64;
int NPROBES = 96;

func void main() {
  Entry*[] table = new Entry*[16];
  // L0: populate the table (bucket-chain construction, ordered).
  for (int i = 0; i < 64; i = i + 1) {
    int key = (i * 2654435761) % 1024;
    if (key < 0) { key = -key; }
    int b = key % 16;
    Entry* e = new Entry;
    e->key = key;
    e->value = key % 97 + i % 11;
    e->next = table[b];
    table[b] = e;
  }

  // L1: build the probe request list (ordered construction).
  Probe* probes = null;
  for (int p = 0; p < 96; p = p + 1) {
    int key = ((p % 64) * 2654435761) % 1024;
    if (key < 0) { key = -key; }
    Probe* pr = new Probe;
    pr->key = key;
    pr->result = 0;
    pr->next = probes;
    probes = pr;
  }

  // L2: probe stream — the Table II kernel (ht_find per request,
  // read-only chain walks, disjoint result writes).
  int found = 0;
  Probe* pr = probes;
  while (pr) {
    // L3: ht_find — bucket-chain walk.
    Entry* e = table[pr->key % 16];
    int value = 0;
    while (e) {
      if (e->key == pr->key) {
        value = e->value;
      }
      e = e->next;
    }
    pr->result = value;
    found += value;
    pr = pr->next;
  }
  // L4: hit count (reduction over the probe list).
  int hits = 0;
  pr = probes;
  while (pr) {
    if (pr->result > 0) { hits += 1; }
    pr = pr->next;
  }
  print("hash", found, hits);
}
"""

HASH = Benchmark(
    name="hash",
    suite="plds",
    source=SOURCE,
    description="Shootout hash ht_find probe stream",
    ground_truth={
        "main.L0": False,  # ordered chain construction
        "main.L1": False,  # ordered probe-list construction
        "main.L2": True,   # independent probes
        "main.L3": True,   # chain scan: unique key match, order-free
        "main.L4": True,
    },
    expert_loops=["main.L2"],
    table2=Table2Info(
        origin="Shootout",
        function="ht_find",
        kernel_label="main.L2",
        lit_overall_speedup=4.0,
        technique="Partitioning",
    ),
)
